package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCondInvert(t *testing.T) {
	pairs := [][2]Cond{{EQ, NE}, {CS, CC}, {MI, PL}, {VS, VC}, {HI, LS}, {GE, LT}, {GT, LE}}
	for _, p := range pairs {
		if p[0].Invert() != p[1] || p[1].Invert() != p[0] {
			t.Errorf("%v/%v do not invert to each other", p[0], p[1])
		}
	}
	if AL.Invert() != AL {
		t.Errorf("AL.Invert() = %v", AL.Invert())
	}
	// Property: involution for all real conditions.
	for c := EQ; c < AL; c++ {
		if c.Invert().Invert() != c {
			t.Errorf("Invert not involutive for %v", c)
		}
	}
}

func TestRegListOps(t *testing.T) {
	l := Regs(R0, R4, LR, PC)
	for _, r := range []Reg{R0, R4, LR, PC} {
		if !l.Has(r) {
			t.Errorf("list should contain %v", r)
		}
	}
	for _, r := range []Reg{R1, SP, R12} {
		if l.Has(r) {
			t.Errorf("list should not contain %v", r)
		}
	}
	if l.Count() != 4 {
		t.Errorf("Count = %d, want 4", l.Count())
	}
	if got := l.String(); got != "{r0,r4,lr,pc}" {
		t.Errorf("String = %q", got)
	}
	if Regs().Count() != 0 {
		t.Error("empty list should count 0")
	}
}

func TestRegListCountProperty(t *testing.T) {
	f := func(v uint16) bool {
		l := RegList(v)
		n := 0
		for r := R0; r <= PC; r++ {
			if l.Has(r) {
				n++
			}
		}
		return n == l.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrSizes(t *testing.T) {
	cases := []struct {
		ins  Instr
		want uint32
	}{
		{Instr{Op: OpNOP}, 2},
		{Instr{Op: OpMOVr, Rd: R0, Rm: R1}, 2},
		{Instr{Op: OpMOVW, Rd: R0, Imm: 0x1234}, 4},
		{Instr{Op: OpMOVT, Rd: R0, Imm: 0x1234}, 4},
		{Instr{Op: OpBL, Sym: "f"}, 4},
		{Instr{Op: OpB, Cond: AL, Sym: "l"}, 2},
		{Instr{Op: OpB, Cond: EQ, Sym: "l"}, 2},
		{Instr{Op: OpB, Cond: EQ, Sym: "l", Wide: true}, 4},
		{Instr{Op: OpBX, Rm: LR}, 2},
		{Instr{Op: OpBLX, Rm: R3}, 2},
		{Instr{Op: OpPUSH, List: Regs(R4, LR)}, 2},
		{Instr{Op: OpLDRPC, Rn: R0, Rm: R1}, 4},
		{Instr{Op: OpSECALL, Imm: 1}, 4},
		{Instr{Op: OpLDRi, Rd: R0, Rn: R1, Imm: 4}, 2},
		{Instr{Op: OpLDRi, Rd: R0, Rn: R1, Imm: 200}, 4}, // out of narrow range
		{Instr{Op: OpLDRi, Rd: R0, Rn: R8, Imm: 4}, 4},   // high register
		{Instr{Op: OpADDi, Rd: R0, Rn: R0, Imm: 255}, 2}, // max narrow
		{Instr{Op: OpADDi, Rd: R0, Rn: R0, Imm: 256}, 4}, // over
		{Instr{Op: OpADDi, Rd: R0, Rn: R0, Imm: -1}, 4},  // negative
		{Instr{Op: OpMOVi, Rd: R0, Imm: 255}, 2},
		{Instr{Op: OpMOVi, Rd: R0, Imm: 300}, 4},
		{Instr{Op: OpUDIV, Rd: R0, Rn: R1, Rm: R2}, 4},
	}
	for _, c := range cases {
		if got := c.ins.Size(); got != c.want {
			t.Errorf("%v: Size = %d, want %d", c.ins, got, c.want)
		}
	}
}

func TestBranchKinds(t *testing.T) {
	cases := []struct {
		ins  Instr
		want BranchKind
	}{
		{Instr{Op: OpB, Cond: AL, Sym: "x"}, KindDirect},
		{Instr{Op: OpB, Cond: NE, Sym: "x"}, KindCond},
		{Instr{Op: OpBL, Sym: "f"}, KindCall},
		{Instr{Op: OpBLX, Rm: R2}, KindIndirectCall},
		{Instr{Op: OpBX, Rm: R2}, KindIndirectJump},
		{Instr{Op: OpBX, Rm: LR}, KindReturn},
		{Instr{Op: OpPOP, List: Regs(R4, PC)}, KindReturn},
		{Instr{Op: OpPOP, List: Regs(R4)}, KindNone},
		{Instr{Op: OpLDRPC, Rn: R0, Rm: R1}, KindIndirectJump},
		{Instr{Op: OpSECALL, Imm: 3}, KindSecureCall},
		{Instr{Op: OpHLT}, KindHalt},
		{Instr{Op: OpADDi, Rd: R0, Rn: R0, Imm: 1}, KindNone},
	}
	for _, c := range cases {
		if got := c.ins.Kind(); got != c.want {
			t.Errorf("%v: Kind = %v, want %v", c.ins, got, c.want)
		}
		isB := c.want != KindNone && c.want != KindSecureCall && c.want != KindHalt
		if got := c.ins.IsBranch(); got != isB {
			t.Errorf("%v: IsBranch = %v, want %v", c.ins, got, isB)
		}
	}
}

func TestWritesReg(t *testing.T) {
	cases := []struct {
		ins  Instr
		reg  Reg
		want bool
	}{
		{Instr{Op: OpMOVi, Rd: R3, Imm: 1}, R3, true},
		{Instr{Op: OpMOVi, Rd: R3, Imm: 1}, R4, false},
		{Instr{Op: OpLDRi, Rd: R5, Rn: R0}, R5, true},
		{Instr{Op: OpSTRi, Rd: R5, Rn: R0}, R5, false}, // store reads Rd
		{Instr{Op: OpPOP, List: Regs(R4, R5)}, R4, true},
		{Instr{Op: OpBL, Sym: "f"}, LR, true},
		{Instr{Op: OpBLX, Rm: R1}, LR, true},
		{Instr{Op: OpCMPi, Rn: R1, Imm: 3}, R1, false},
	}
	for _, c := range cases {
		if got := c.ins.WritesReg(c.reg); got != c.want {
			t.Errorf("%v WritesReg(%v) = %v, want %v", c.ins, c.reg, got, c.want)
		}
	}
}

// randInstr draws a structurally valid random instruction for round-trip
// testing.
func randInstr(r *rand.Rand) Instr {
	ops := []Op{OpMOVr, OpMOVi, OpMOVW, OpADDi, OpSUBr, OpCMPi, OpLDRi, OpSTRr,
		OpPUSH, OpPOP, OpB, OpBL, OpBLX, OpBX, OpLDRPC, OpNOP, OpSECALL, OpHLT}
	i := Instr{
		Op:     ops[r.Intn(len(ops))],
		Cond:   Cond(r.Intn(int(AL) + 1)),
		Rd:     Reg(r.Intn(NumRegs)),
		Rn:     Reg(r.Intn(NumRegs)),
		Rm:     Reg(r.Intn(NumRegs)),
		Imm:    int32(r.Uint32()),
		List:   RegList(r.Uint32()),
		Wide:   r.Intn(2) == 0,
		Target: r.Uint32(),
	}
	if r.Intn(2) == 0 {
		syms := []string{"", "loop", "f.label", "a_rather_long_symbol_name"}
		i.Sym = syms[r.Intn(len(syms))]
	}
	return i
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for n := 0; n < 2000; n++ {
		in := randInstr(r)
		buf := in.Encode(nil)
		if len(buf) != in.EncodedLen() {
			t.Fatalf("EncodedLen %d != actual %d", in.EncodedLen(), len(buf))
		}
		out, used, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if used != len(buf) {
			t.Fatalf("Decode consumed %d of %d", used, len(buf))
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestEncodeInjective(t *testing.T) {
	// Any single-field difference must change the encoding.
	base := Instr{Op: OpADDi, Rd: R1, Rn: R2, Imm: 5}
	variants := []Instr{
		{Op: OpSUBi, Rd: R1, Rn: R2, Imm: 5},
		{Op: OpADDi, Rd: R3, Rn: R2, Imm: 5},
		{Op: OpADDi, Rd: R1, Rn: R4, Imm: 5},
		{Op: OpADDi, Rd: R1, Rn: R2, Imm: 6},
		{Op: OpADDi, Rd: R1, Rn: R2, Imm: 5, Wide: true},
		{Op: OpADDi, Rd: R1, Rn: R2, Imm: 5, Sym: "x"},
	}
	b0 := string(base.Encode(nil))
	for _, v := range variants {
		if string(v.Encode(nil)) == b0 {
			t.Errorf("encoding collision: %v vs %v", base, v)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should fail")
	}
	if _, _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("Decode(short) should fail")
	}
	// Symbol length overrunning the buffer.
	in := Instr{Op: OpB, Sym: "target"}
	buf := in.Encode(nil)
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Error("Decode(truncated symbol) should fail")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: OpNOP}, "nop"},
		{Instr{Op: OpMOVi, Rd: R2, Imm: 7}, "mov r2, #7"},
		{Instr{Op: OpB, Cond: EQ, Sym: "done"}, "beq done"},
		{Instr{Op: OpB, Cond: AL, Sym: "loop"}, "b loop"},
		{Instr{Op: OpBX, Rm: LR}, "bx lr"},
		{Instr{Op: OpPUSH, List: Regs(R4, LR)}, "push {r4,lr}"},
		{Instr{Op: OpLDRi, Rd: R0, Rn: SP, Imm: 8}, "ldr r0, [sp, #8]"},
		{Instr{Op: OpSECALL, Imm: 1}, "secall #1"},
		{Instr{Op: OpLDRPC, Rn: R2, Rm: R4}, "ldrpc [r2, r4, lsl #2]"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
