package remote

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/linker"
	"raptrack/internal/speccfa"
	"raptrack/internal/verify"
)

// testSetup provisions one app on a fresh endpoint and builds the
// matching verifier.
func testSetup(t *testing.T, appName string, watermark int) (*ProverEndpoint, *verify.Verifier, *linker.Output) {
	t.Helper()
	a, err := apps.Get(appName)
	if err != nil {
		t.Fatal(err)
	}
	link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	ep := NewProverEndpoint()
	ep.Provision(appName, func() (*core.Prover, error) {
		return core.NewProver(link, key, core.ProverConfig{
			SetupMem:  a.SetupMem(),
			Watermark: watermark,
		})
	})
	return ep, core.NewVerifier(link, key), link
}

// session runs one end-to-end challenge-response over an in-memory pipe.
func session(t *testing.T, ep *ProverEndpoint, v *verify.Verifier, app string) (*SessionResult, error) {
	t.Helper()
	cli, srv := net.Pipe()
	defer cli.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	go func() {
		defer wg.Done()
		defer srv.Close()
		srvErr = ep.ServeOne(srv)
	}()
	res, err := RequestAttestation(cli, app, v)
	wg.Wait()
	if err == nil && srvErr != nil {
		t.Logf("server-side: %v", srvErr)
	}
	return res, err
}

func TestRemoteRoundTrip(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	res, err := session(t, ep, v, "prime")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("verdict: %s", res.Verdict.Reason())
	}
	if len(res.Reports) == 0 || !res.Reports[len(res.Reports)-1].Final {
		t.Fatalf("report chain: %d reports", len(res.Reports))
	}
}

func TestRemoteStreamsPartials(t *testing.T) {
	ep, v, _ := testSetup(t, "gps", 512)
	res, err := session(t, ep, v, "gps")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("verdict: %s", res.Verdict.Reason())
	}
	if len(res.Reports) < 5 {
		t.Fatalf("expected many partial reports at a 512 B watermark, got %d", len(res.Reports))
	}
}

func TestRemoteUnknownApp(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	_, err := session(t, ep, v, "missing")
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("err = %v", err)
	}
}

// mitm forwards frames between two pipes, mutating report payloads.
func mitm(t *testing.T, mutate func([]byte)) (clientSide net.Conn, proverSide net.Conn) {
	t.Helper()
	c1, m1 := net.Pipe() // client <-> mitm
	m2, p2 := net.Pipe() // mitm <-> prover
	// challenge direction: pass through
	go func() {
		for {
			typ, payload, err := ReadFrame(m1)
			if err != nil {
				m2.Close()
				return
			}
			if err := WriteFrame(m2, typ, payload); err != nil {
				return
			}
		}
	}()
	// report direction: mutate
	go func() {
		for {
			typ, payload, err := ReadFrame(m2)
			if err != nil {
				m1.Close()
				return
			}
			if typ == FrameRprt {
				mutate(payload)
			}
			if err := WriteFrame(m1, typ, payload); err != nil {
				return
			}
		}
	}()
	return c1, p2
}

func TestRemoteTamperInTransitRejected(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	cli, srv := mitm(t, func(b []byte) {
		if len(b) > 60 {
			b[60] ^= 0x01 // flip a bit inside the report body
		}
	})
	defer cli.Close()
	go func() {
		defer srv.Close()
		_ = ep.ServeOne(srv)
	}()
	_, err := RequestAttestation(cli, "prime", v)
	if err == nil {
		t.Fatal("tampered transit accepted")
	}
	if !strings.Contains(err.Error(), "authenticator") && !strings.Contains(err.Error(), "chain") {
		t.Errorf("err = %v", err)
	}
}

// TestRemoteTruncatedSessionFails kills the prover mid-stream (after the
// first partial report) and asserts the Verifier surfaces the
// ErrSessionTruncated sentinel through errors.Is.
func TestRemoteTruncatedSessionFails(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 512)
	cli, srv := net.Pipe()
	go func() {
		// Serve but cut the connection after the first report frame.
		typ, payload, err := ReadFrame(srv)
		if err != nil || typ != FrameChal {
			srv.Close()
			return
		}
		chal, _ := attest.DecodeChallenge(payload)
		prover, _ := func() (*core.Prover, error) {
			a, _ := apps.Get("prime")
			link, _ := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
			key, _ := attest.GenerateHMACKey()
			return core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem(), Watermark: 512})
		}()
		sent := false
		prover.Engine.OnReport = func(r *attest.Report) {
			if !sent {
				_ = WriteFrame(srv, FrameRprt, r.Encode())
				sent = true
			}
		}
		_, _, _ = prover.Attest(chal)
		srv.Close()
	}()
	defer cli.Close()
	_, err := RequestAttestation(cli, "prime", v)
	if err == nil {
		t.Fatal("truncated session accepted")
	}
	if !errors.Is(err, ErrSessionTruncated) {
		t.Fatalf("errors.Is(err, ErrSessionTruncated) = false; err = %v", err)
	}
	_ = ep
}

// TestRemoteTruncatedBeforeAnyReport kills the prover right after the
// challenge: the very first stream read must map to the sentinel too.
func TestRemoteTruncatedBeforeAnyReport(t *testing.T) {
	_, v, _ := testSetup(t, "prime", 0)
	cli, srv := net.Pipe()
	go func() {
		_, _, _ = ReadFrame(srv) // swallow the challenge
		srv.Close()
	}()
	defer cli.Close()
	_, err := RequestAttestation(cli, "prime", v)
	if !errors.Is(err, ErrSessionTruncated) {
		t.Fatalf("errors.Is(err, ErrSessionTruncated) = false; err = %v", err)
	}
}

func TestFrameLimits(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		defer c2.Close()
		hdr := []byte{FrameRprt, 0xff, 0xff, 0xff, 0x7f} // absurd length
		_, _ = c2.Write(hdr)
	}()
	if _, _, err := ReadFrame(c1); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized frame: %v", err)
	}
}

// TestRequestErrorPaths drives the Verifier side against scripted peer
// behavior: every malformed or adversarial stream must fail with a
// descriptive error (and the right sentinel where one exists).
func TestRequestErrorPaths(t *testing.T) {
	_, v, _ := testSetup(t, "prime", 0)
	cases := []struct {
		name string
		// peer scripts the prover side after reading the challenge
		peer    func(t *testing.T, conn net.Conn)
		wantSub string       // substring of the error
		wantIs  error        // optional sentinel for errors.Is
	}{
		{
			name: "wrong frame type",
			peer: func(t *testing.T, conn net.Conn) {
				_ = WriteFrame(conn, FrameChal, []byte("nonsense")) // challenge echoed back
			},
			wantSub: "unexpected frame type",
		},
		{
			name: "unknown frame type",
			peer: func(t *testing.T, conn net.Conn) {
				_ = WriteFrame(conn, 0x7f, nil)
			},
			wantSub: "unexpected frame type",
		},
		{
			name: "oversized frame",
			peer: func(t *testing.T, conn net.Conn) {
				_, _ = conn.Write([]byte{FrameRprt, 0xff, 0xff, 0xff, 0xff})
			},
			wantSub: "exceeds limit",
		},
		{
			name: "fail frame",
			peer: func(t *testing.T, conn net.Conn) {
				_ = WriteFrame(conn, FrameFail, []byte("engine on fire"))
			},
			wantSub: "engine on fire",
		},
		{
			name: "garbage report payload",
			peer: func(t *testing.T, conn net.Conn) {
				_ = WriteFrame(conn, FrameRprt, []byte{1, 2, 3})
			},
			wantIs: attest.ErrBadReport,
		},
		{
			name: "immediate close",
			peer: func(t *testing.T, conn net.Conn) {},
			wantIs: ErrSessionTruncated,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cli, srv := net.Pipe()
			defer cli.Close()
			go func() {
				defer srv.Close()
				if typ, _, err := ReadFrame(srv); err != nil || typ != FrameChal {
					return
				}
				tc.peer(t, srv)
			}()
			_, err := RequestAttestation(cli, "prime", v)
			if err == nil {
				t.Fatal("scripted failure accepted")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want substring %q", err, tc.wantSub)
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Errorf("errors.Is(%v, %v) = false", err, tc.wantIs)
			}
		})
	}
}

// TestServeOneBusyAndFail covers the prover-side reactions to gateway
// control frames: BUSY maps to ErrBusy, FAIL surfaces the reason.
func TestServeOneBusyAndFail(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	t.Run("busy", func(t *testing.T) {
		cli, srv := net.Pipe()
		defer cli.Close()
		go func() {
			defer srv.Close()
			_ = WriteFrame(srv, FrameBusy, nil)
		}()
		if err := ep.ServeOne(cli); !errors.Is(err, ErrBusy) {
			t.Fatalf("errors.Is(err, ErrBusy) = false; err = %v", err)
		}
	})
	t.Run("fail", func(t *testing.T) {
		cli, srv := net.Pipe()
		defer cli.Close()
		go func() {
			defer srv.Close()
			_ = WriteFrame(srv, FrameFail, []byte("no capacity today"))
		}()
		err := ep.ServeOne(cli)
		if err == nil || !strings.Contains(err.Error(), "no capacity today") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestVerdictRoundTrip(t *testing.T) {
	for _, gv := range []GatewayVerdict{
		{OK: true},
		{OK: false, Code: verify.ReasonROP, Detail: "return destination 0x1234 != call-site successor"},
		{OK: false, Code: verify.ReasonHMemMismatch},
	} {
		got, err := DecodeVerdict(EncodeVerdict(gv.OK, gv.Code, gv.Detail))
		if err != nil {
			t.Fatal(err)
		}
		if got != gv {
			t.Errorf("round trip: got %+v, want %+v", got, gv)
		}
	}
	if _, err := DecodeVerdict(nil); !errors.Is(err, ErrBadVerdict) {
		t.Errorf("empty verdict payload: %v", err)
	}
	if _, err := DecodeVerdict([]byte{9, 0}); !errors.Is(err, ErrBadVerdict) {
		t.Errorf("bad ok byte: %v", err)
	}
	// Unknown reason codes and accepted-but-coded payloads are rejected.
	if _, err := DecodeVerdict([]byte{0, 0xee}); !errors.Is(err, ErrBadVerdict) {
		t.Errorf("unknown reason code: %v", err)
	}
	if _, err := DecodeVerdict([]byte{1, byte(verify.ReasonROP)}); !errors.Is(err, ErrBadVerdict) {
		t.Errorf("ok verdict with a rejection code: %v", err)
	}
}

// TestHelloVersionNegotiation: the v2 HELO carries the protocol version;
// a mismatched or empty payload maps to ErrProtocolMismatch.
func TestHelloVersionNegotiation(t *testing.T) {
	app, err := ParseHello(EncodeHello("prime"))
	if err != nil || app != "prime" {
		t.Fatalf("round trip: app=%q err=%v", app, err)
	}
	if _, err := ParseHello(nil); !errors.Is(err, ErrProtocolMismatch) {
		t.Errorf("empty hello: %v", err)
	}
	old := append([]byte{ProtocolVersion - 1}, "prime"...)
	if _, err := ParseHello(old); !errors.Is(err, ErrProtocolMismatch) {
		t.Errorf("stale version: %v", err)
	} else if !strings.Contains(err.Error(), "v1") || !strings.Contains(err.Error(), "v2") {
		t.Errorf("mismatch error should name both versions: %v", err)
	}
}

// TestRemoteDictionaryDelivery: the gateway-side DICT frame provisions the
// prover's engine, so compressed evidence round-trips when the verifier
// expands with the same dictionary.
func TestRemoteDictionaryDelivery(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)

	// Mine a dictionary from one plain session's evidence.
	plain, err := session(t, ep, v, "prime")
	if err != nil || !plain.Verdict.OK {
		t.Fatalf("plain session: err=%v", err)
	}
	dict, err := speccfa.Mine(plain.Verdict.Evidence, 8, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dict.Len() == 0 {
		t.Skip("no repetition to mine in this app")
	}

	// Second session: verifier side sends DICT before CHAL; the prover
	// compresses with it, and the verifier expands with the same one.
	cli, srv := net.Pipe()
	defer cli.Close()
	go func() {
		defer srv.Close()
		_ = ep.ServeOne(srv)
	}()
	chal, err := attest.NewChallenge("prime")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(cli, FrameDict, dict.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(cli, FrameChal, chal.Encode()); err != nil {
		t.Fatal(err)
	}
	reports, err := ReadReportStream(cli)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := v.VerifyWithDictionary(chal, reports, dict)
	if err != nil {
		t.Fatal(err)
	}
	if !vd.OK {
		t.Fatalf("compressed session rejected: %s", vd.Reason())
	}
	var compressed, plainBytes int
	for _, r := range reports {
		compressed += len(r.CFLog)
	}
	for _, r := range plain.Reports {
		plainBytes += len(r.CFLog)
	}
	if compressed >= plainBytes {
		t.Errorf("dictionary did not compress: %d B >= %d B", compressed, plainBytes)
	}
}
