package remote

import (
	"net"
	"strings"
	"sync"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/linker"
	"raptrack/internal/verify"
)

// testSetup provisions one app on a fresh endpoint and builds the
// matching verifier.
func testSetup(t *testing.T, appName string, watermark int) (*ProverEndpoint, *verify.Verifier, *linker.Output) {
	t.Helper()
	a, err := apps.Get(appName)
	if err != nil {
		t.Fatal(err)
	}
	link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		t.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		t.Fatal(err)
	}
	ep := NewProverEndpoint()
	ep.Provision(appName, func() (*core.Prover, error) {
		return core.NewProver(link, key, core.ProverConfig{
			SetupMem:  a.SetupMem(),
			Watermark: watermark,
		})
	})
	return ep, core.NewVerifier(link, key), link
}

// session runs one end-to-end challenge-response over an in-memory pipe.
func session(t *testing.T, ep *ProverEndpoint, v *verify.Verifier, app string) (*SessionResult, error) {
	t.Helper()
	cli, srv := net.Pipe()
	defer cli.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	go func() {
		defer wg.Done()
		defer srv.Close()
		srvErr = ep.ServeOne(srv)
	}()
	res, err := RequestAttestation(cli, app, v)
	wg.Wait()
	if err == nil && srvErr != nil {
		t.Logf("server-side: %v", srvErr)
	}
	return res, err
}

func TestRemoteRoundTrip(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	res, err := session(t, ep, v, "prime")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("verdict: %s", res.Verdict.Reason)
	}
	if len(res.Reports) == 0 || !res.Reports[len(res.Reports)-1].Final {
		t.Fatalf("report chain: %d reports", len(res.Reports))
	}
}

func TestRemoteStreamsPartials(t *testing.T) {
	ep, v, _ := testSetup(t, "gps", 512)
	res, err := session(t, ep, v, "gps")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK {
		t.Fatalf("verdict: %s", res.Verdict.Reason)
	}
	if len(res.Reports) < 5 {
		t.Fatalf("expected many partial reports at a 512 B watermark, got %d", len(res.Reports))
	}
}

func TestRemoteUnknownApp(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	_, err := session(t, ep, v, "missing")
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("err = %v", err)
	}
}

// mitm forwards frames between two pipes, mutating report payloads.
func mitm(t *testing.T, mutate func([]byte)) (clientSide net.Conn, proverSide net.Conn) {
	t.Helper()
	c1, m1 := net.Pipe() // client <-> mitm
	m2, p2 := net.Pipe() // mitm <-> prover
	// challenge direction: pass through
	go func() {
		for {
			typ, payload, err := readFrame(m1)
			if err != nil {
				m2.Close()
				return
			}
			if err := writeFrame(m2, typ, payload); err != nil {
				return
			}
		}
	}()
	// report direction: mutate
	go func() {
		for {
			typ, payload, err := readFrame(m2)
			if err != nil {
				m1.Close()
				return
			}
			if typ == frameRprt {
				mutate(payload)
			}
			if err := writeFrame(m1, typ, payload); err != nil {
				return
			}
		}
	}()
	return c1, p2
}

func TestRemoteTamperInTransitRejected(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	cli, srv := mitm(t, func(b []byte) {
		if len(b) > 60 {
			b[60] ^= 0x01 // flip a bit inside the report body
		}
	})
	defer cli.Close()
	go func() {
		defer srv.Close()
		_ = ep.ServeOne(srv)
	}()
	_, err := RequestAttestation(cli, "prime", v)
	if err == nil {
		t.Fatal("tampered transit accepted")
	}
	if !strings.Contains(err.Error(), "authenticator") && !strings.Contains(err.Error(), "chain") {
		t.Errorf("err = %v", err)
	}
}

func TestRemoteTruncatedSessionFails(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 512)
	cli, srv := net.Pipe()
	go func() {
		// Serve but cut the connection after the first report frame.
		typ, payload, err := readFrame(srv)
		if err != nil || typ != frameChal {
			srv.Close()
			return
		}
		chal, _ := attest.DecodeChallenge(payload)
		prover, _ := func() (*core.Prover, error) {
			a, _ := apps.Get("prime")
			link, _ := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
			key, _ := attest.GenerateHMACKey()
			return core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem(), Watermark: 512})
		}()
		sent := false
		prover.Engine.OnReport = func(r *attest.Report) {
			if !sent {
				_ = writeFrame(srv, frameRprt, r.Encode())
				sent = true
			}
		}
		_, _, _ = prover.Attest(chal)
		srv.Close()
	}()
	defer cli.Close()
	_, err := RequestAttestation(cli, "prime", v)
	if err == nil {
		t.Fatal("truncated session accepted")
	}
	_ = ep
}

func TestFrameLimits(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	go func() {
		defer c2.Close()
		hdr := []byte{frameRprt, 0xff, 0xff, 0xff, 0x7f} // absurd length
		_, _ = c2.Write(hdr)
	}()
	if _, _, err := readFrame(c1); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized frame: %v", err)
	}
}
