// Client is the one prover-side entry point for gateway sessions. It
// replaces the grown-by-accretion free functions (AttestTo, AttestToAs,
// AttestWithRetry — now deprecated shims) with a single configured
// object: construct once with functional options, then attest on as many
// connections as the device dials.
package remote

import "io"

// Client drives gateway attestation sessions for a ProverEndpoint with a
// fixed configuration: device identity, batch vs streaming delivery,
// retry policy, and an optional connection-wrapping fault hook. A Client
// is immutable after NewClient and safe for concurrent sessions.
type Client struct {
	ep       *ProverEndpoint
	device   string
	stream   bool
	onHeal   func(Heal)
	retry    RetryPolicy
	hasRetry bool
	wrap     func(io.ReadWriter) io.ReadWriter
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithDevice announces a stable device identity in the HELO frame: a
// shard router (internal/router) pins the session by (app, device), so
// fleet devices that identify themselves land on a consistent replica
// and reuse its warmed caches.
func WithDevice(device string) ClientOption {
	return func(c *Client) { c.device = device }
}

// WithStreaming switches report delivery from buffered RPRT frames to
// streaming SLICE frames: each partial report ships the moment the MTB
// watermark fires, carrying the running authentication tag, so the
// gateway verifies slice-by-slice and detection latency is bounded by
// the slice size instead of the run length. onHeal (nil allowed)
// observes HEAL directives the gateway pushes mid-run; the Client
// acknowledges every directive on the wire regardless.
func WithStreaming(onHeal func(Heal)) ClientOption {
	return func(c *Client) {
		c.stream = true
		c.onHeal = onHeal
	}
}

// WithRetry makes AttestDial retry failed sessions under pol (fresh
// connection and fresh gateway challenge per attempt). Without it
// AttestDial runs exactly one attempt.
func WithRetry(pol RetryPolicy) ClientOption {
	return func(c *Client) {
		c.retry = pol
		c.hasRetry = true
	}
}

// WithFaults wraps every session's connection through wrap before any
// frame is exchanged. Chaos harnesses (internal/faults) splice loss,
// corruption and stall injectors here without the session code knowing.
func WithFaults(wrap func(io.ReadWriter) io.ReadWriter) ClientOption {
	return func(c *Client) { c.wrap = wrap }
}

// NewClient builds a Client for the endpoint's provisioned applications.
func NewClient(p *ProverEndpoint, opts ...ClientOption) *Client {
	c := &Client{ep: p}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Attest runs one gateway session for app on an existing connection and
// returns the gateway's verdict: HELO (with the configured device
// identity), adopt the session dictionary if one is delivered, answer
// the challenge while delivering evidence (RPRT frames, or SLICE frames
// with HEAL handling under WithStreaming). ErrBusy reports a shed
// session; ErrSessionTruncated a gateway that died mid-protocol.
//
// Streaming sessions read and write conn concurrently (net.Conn and
// net.Pipe both support that).
func (c *Client) Attest(conn io.ReadWriter, app string) (GatewayVerdict, error) {
	if c.wrap != nil {
		conn = c.wrap(conn)
	}
	if c.stream {
		return c.ep.attestStream(conn, app, c.device, c.onHeal)
	}
	return c.ep.attestBatch(conn, app, c.device)
}

// AttestDial dials sessions for app until one completes: one attempt
// without WithRetry, otherwise the policy's backoff loop with a fresh
// connection (and fresh gateway challenge) per attempt. The returned
// GatewayVerdict may still report a rejection — "the session completed"
// and "the evidence attested a benign path" are separate concerns.
func (c *Client) AttestDial(app string, dial func() (io.ReadWriteCloser, error)) (GatewayVerdict, RetryStats, error) {
	pol := c.retry
	if !c.hasRetry {
		pol = RetryPolicy{MaxAttempts: 1}
	}
	return c.ep.attestRetry(dial, pol, func(conn io.ReadWriter) (GatewayVerdict, error) {
		return c.Attest(conn, app)
	})
}
