// Package remote implements the RA challenge-response protocol of paper
// §II-C over a byte stream (net.Conn, net.Pipe, ...): the Verifier sends a
// fresh challenge, the Prover runs the attested application and streams
// signed (partial) reports back as the MTB watermark fires, and the
// Verifier authenticates the chain and reconstructs the path.
//
// Wire format: length-prefixed frames, each `u8 type | u32 len | payload`.
//
//	CHAL (Verifier->Prover): attest.Challenge encoding
//	RPRT (Prover->Verifier): attest.Report encoding; the Final flag inside
//	                         the report ends the session
//	FAIL (either direction): UTF-8 error string (unknown app, run fault)
//	HELO (Prover->Verifier): `u8 version | app name`; announces a device
//	                         dialing into a gateway (internal/server),
//	                         which answers with DICT+CHAL, CHAL, BUSY or
//	                         FAIL (version mismatches are rejected with a
//	                         FAIL wrapping ErrProtocolMismatch)
//	BUSY (Verifier->Prover): the gateway is at capacity; the session is
//	                         shed before any challenge is issued. The
//	                         payload is empty, or a u32 little-endian
//	                         retry-after hint in milliseconds
//	DICT (Verifier->Prover): live SpecCFA dictionary for this session
//	                         (speccfa.Dictionary wire encoding), sent
//	                         before CHAL so the prover compresses with the
//	                         same speculation set the gateway expands with
//	VRDT (Verifier->Prover): gateway verdict summary (ok flag + typed
//	                         reason code + detail)
//	SLICE (Prover->Verifier): streaming evidence slice — a partial report
//	                         wrapped with its sequence number, MTB
//	                         watermark position, running-auth tag and
//	                         final-slice bit (see stream.go); the gateway
//	                         verifies it immediately instead of buffering
//	                         to report-end
//	HEAL (Verifier->Prover): typed remediation directive pushed mid-run
//	                         (quarantine-app / re-provision-H_MEM /
//	                         force-reattest), acknowledged by HEALACK
//	HEALACK (Prover->Verifier): acknowledges one HEAL directive
//
// Evidence integrity does not depend on the transport: a man in the
// middle can drop the session but any modification is caught by the
// report authenticators and chain checks. BUSY shedding, deadlines and
// session caps (internal/server) are availability defenses only.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/speccfa"
	"raptrack/internal/verify"
)

// Frame types.
const (
	FrameChal    byte = 1 // Verifier->Prover: challenge
	FrameRprt    byte = 2 // Prover->Verifier: (partial) report
	FrameFail    byte = 3 // either direction: error string
	FrameHello   byte = 4 // Prover->Verifier: app announce (gateway mode)
	FrameBusy    byte = 5 // Verifier->Prover: session shed at capacity
	FrameVerdict byte = 6 // Verifier->Prover: session verdict summary
	FrameDict    byte = 7 // Verifier->Prover: session SpecCFA dictionary
	FrameSlice   byte = 8 // Prover->Verifier: streaming evidence slice
	FrameHeal    byte = 9 // Verifier->Prover: remediation directive
	FrameHealAck byte = 10 // Prover->Verifier: HEAL acknowledgement
)

// ProtocolVersion is negotiated in the HELO frame's leading byte. v2
// introduced the version byte itself, the DICT frame and coded verdicts;
// there is no compatibility path to the unversioned v1 HELO, so
// mismatches are rejected explicitly instead of mis-parsing.
const ProtocolVersion byte = 2

// ErrProtocolMismatch is returned (and sent inside a FAIL frame) when a
// HELO announces a protocol version this endpoint does not speak. Test
// with errors.Is.
var ErrProtocolMismatch = errors.New("remote: protocol version mismatch")

// EncodeHello builds a HELO payload announcing app at ProtocolVersion.
func EncodeHello(app string) []byte {
	return append([]byte{ProtocolVersion}, app...)
}

// EncodeHelloID builds a HELO payload announcing app together with a
// stable device identity. The device rides after a NUL separator —
// `u8 version | app | 0x00 | device` — which no application name
// contains, so the frame stays a valid v2 HELO: endpoints that only
// care about the app (ParseHello) keep working, while a shard router
// pins the session by (app, device). An empty device encodes exactly
// like EncodeHello.
func EncodeHelloID(app, device string) []byte {
	p := append([]byte{ProtocolVersion}, app...)
	if device != "" {
		p = append(p, 0)
		p = append(p, device...)
	}
	return p
}

// ParseHello validates a HELO payload's version byte and returns the
// announced application name.
func ParseHello(payload []byte) (string, error) {
	app, _, err := ParseHelloID(payload)
	return app, err
}

// ParseHelloID validates a HELO payload's version byte and returns the
// announced application name plus the optional device identity (empty
// when the prover sent a plain EncodeHello).
func ParseHelloID(payload []byte) (app, device string, err error) {
	if len(payload) == 0 {
		return "", "", fmt.Errorf("%w: empty HELO", ErrProtocolMismatch)
	}
	if payload[0] != ProtocolVersion {
		return "", "", fmt.Errorf("%w: peer speaks v%d, want v%d", ErrProtocolMismatch, payload[0], ProtocolVersion)
	}
	rest := payload[1:]
	if i := strings.IndexByte(string(rest), 0); i >= 0 {
		return string(rest[:i]), string(rest[i+1:]), nil
	}
	return string(rest), "", nil
}

// MaxFrame bounds a frame payload (a report window plus headers).
const MaxFrame = 1 << 20

// FrameHeaderSize is the fixed `u8 type | u32 len` frame prefix.
const FrameHeaderSize = 5

// WriteFrame emits one length-prefixed frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, FrameHeaderSize)
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting payloads beyond
// MaxFrame before allocating.
//
// Every mid-frame truncation — the stream ending after a partial header,
// or anywhere short of the announced payload length — returns an error
// satisfying both errors.Is(err, ErrSessionTruncated) and
// errors.Is(err, io.ErrUnexpectedEOF), regardless of which read hit the
// end. A clean EOF before the first header byte is returned as io.EOF
// unchanged (only the caller knows whether more frames were expected
// there; see mapTruncation).
func ReadFrame(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, FrameHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: frame header cut short: %w", ErrSessionTruncated, err)
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("remote: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			// The header promised n payload bytes: an EOF here is a
			// partial read even when zero payload bytes arrived.
			err = io.ErrUnexpectedEOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: %d-byte payload cut short: %w", ErrSessionTruncated, n, err)
		}
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// MeteredConn wraps a stream and reports bytes moved in each direction —
// the hook provers use to attribute frame traffic to an observability
// registry without this package importing one. Either callback may be
// nil. Close is forwarded when the underlying stream supports it.
type MeteredConn struct {
	RW      io.ReadWriter
	OnRead  func(n int)
	OnWrite func(n int)
}

func (m *MeteredConn) Read(p []byte) (int, error) {
	n, err := m.RW.Read(p)
	if m.OnRead != nil && n > 0 {
		m.OnRead(n)
	}
	return n, err
}

func (m *MeteredConn) Write(p []byte) (int, error) {
	n, err := m.RW.Write(p)
	if m.OnWrite != nil && n > 0 {
		m.OnWrite(n)
	}
	return n, err
}

func (m *MeteredConn) Close() error {
	if c, ok := m.RW.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// ErrSessionTruncated is returned when the stream ends before the final
// report (or before an expected frame): the peer died or a middlebox cut
// the connection. Test with errors.Is.
var ErrSessionTruncated = errors.New("remote: session truncated before the final report")

// ErrBusy is returned when a gateway sheds the session with a BUSY frame
// instead of issuing a challenge. Test with errors.Is; retrying later is
// the expected client reaction. The concrete error is a *BusyError,
// which may carry the gateway's retry-after hint.
var ErrBusy = errors.New("remote: gateway at capacity")

// BusyError is the typed form of a BUSY shed. RetryAfter is the
// gateway's hint for when to retry (zero when the frame carried none).
// errors.Is(err, ErrBusy) matches it.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("remote: gateway at capacity (retry after %v)", e.RetryAfter)
	}
	return ErrBusy.Error()
}

// Is makes errors.Is(err, ErrBusy) hold for BusyError values.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// ErrBadBusy is returned for malformed BUSY frame payloads.
var ErrBadBusy = errors.New("remote: malformed busy frame payload")

// EncodeBusy builds a BUSY frame payload. A zero (or negative) hint
// yields the empty payload — the pre-hint wire form old endpoints emit
// and expect; sub-millisecond hints round up to 1 ms so they survive the
// encoding.
func EncodeBusy(retryAfter time.Duration) []byte {
	if retryAfter <= 0 {
		return nil
	}
	ms := retryAfter.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	return binary.LittleEndian.AppendUint32(nil, uint32(ms))
}

// ParseBusy decodes a BUSY frame payload: empty means "no hint", four
// bytes carry a little-endian retry-after count in milliseconds. Any
// other length is malformed (ErrBadBusy).
func ParseBusy(payload []byte) (time.Duration, error) {
	switch len(payload) {
	case 0:
		return 0, nil
	case 4:
		return time.Duration(binary.LittleEndian.Uint32(payload)) * time.Millisecond, nil
	default:
		return 0, fmt.Errorf("%w: %d bytes", ErrBadBusy, len(payload))
	}
}

// PeerFailError carries the peer's FAIL frame: Context names the protocol
// step that surfaced it, Msg is the peer's error string verbatim.
type PeerFailError struct {
	Context string
	Msg     string
}

func (e *PeerFailError) Error() string { return "remote: " + e.Context + ": " + e.Msg }

// Fatal reports whether the peer's failure is semantic — a condition an
// identical retry cannot fix (unprovisioned application, protocol version
// mismatch). FAIL is a string-typed frame, so this is necessarily a
// classification of the message text; everything unrecognized is treated
// as transient, which at worst wastes a retry budget.
func (e *PeerFailError) Fatal() bool {
	return strings.Contains(e.Msg, "unknown application") ||
		strings.Contains(e.Msg, "protocol version mismatch")
}

// mapTruncation converts a premature end-of-stream into the
// ErrSessionTruncated sentinel so callers can errors.Is it; other errors
// (deadline expiry, oversized frames, ...) pass through unchanged, as do
// errors ReadFrame already mapped.
func mapTruncation(err error) error {
	if errors.Is(err, ErrSessionTruncated) {
		return err
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return fmt.Errorf("%w (%v)", ErrSessionTruncated, err)
	}
	return err
}

// ProverEndpoint serves attestation requests for a set of provisioned
// applications. Each request constructs a fresh Prover via the factory
// (applications are single-session). Provision before serving; concurrent
// sessions (ServeOne / AttestTo from many goroutines) are safe.
type ProverEndpoint struct {
	mu        sync.RWMutex
	factories map[string]func() (*core.Prover, error)
}

// NewProverEndpoint returns an empty endpoint.
func NewProverEndpoint() *ProverEndpoint {
	return &ProverEndpoint{factories: make(map[string]func() (*core.Prover, error))}
}

// Provision registers an application under its challenge name.
func (p *ProverEndpoint) Provision(app string, factory func() (*core.Prover, error)) {
	p.mu.Lock()
	p.factories[app] = factory
	p.mu.Unlock()
}

func (p *ProverEndpoint) factory(app string) (func() (*core.Prover, error), bool) {
	p.mu.RLock()
	f, ok := p.factories[app]
	p.mu.RUnlock()
	return f, ok
}

// ServeOne handles a single challenge-response session on conn. Reports
// are streamed as the engine emits them (partials included), so the
// Verifier receives evidence while the application still runs. A BUSY
// frame in place of the challenge returns ErrBusy; a FAIL frame surfaces
// the peer's error string.
func (p *ProverEndpoint) ServeOne(conn io.ReadWriter) error {
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("remote: reading challenge: %w", mapTruncation(err))
	}
	var dict *speccfa.Dictionary
	if typ == FrameDict {
		if dict, err = speccfa.DecodeDictionary(payload); err != nil {
			_ = WriteFrame(conn, FrameFail, []byte("bad dictionary"))
			return fmt.Errorf("remote: decoding dictionary: %w", err)
		}
		if typ, payload, err = ReadFrame(conn); err != nil {
			return fmt.Errorf("remote: reading challenge: %w", mapTruncation(err))
		}
	}
	return p.serveSession(conn, typ, payload, dict)
}

// serveSession runs the prover side from an already-read opening frame,
// optionally provisioning a session dictionary (gateway DICT handshake)
// into the freshly built prover's engine before the attested run.
func (p *ProverEndpoint) serveSession(conn io.ReadWriter, typ byte, payload []byte, dict *speccfa.Dictionary) error {
	switch typ {
	case FrameChal:
	case FrameBusy:
		// A malformed hint payload degrades to "no hint": the shed itself
		// is unambiguous from the frame type alone.
		ra, _ := ParseBusy(payload)
		return &BusyError{RetryAfter: ra}
	case FrameFail:
		return &PeerFailError{Context: "verifier rejected session", Msg: string(payload)}
	default:
		return fmt.Errorf("remote: expected challenge frame, got type %d", typ)
	}
	chal, err := attest.DecodeChallenge(payload)
	if err != nil {
		return err
	}
	factory, ok := p.factory(chal.App)
	if !ok {
		_ = WriteFrame(conn, FrameFail, []byte(fmt.Sprintf("unknown application %q", chal.App)))
		return fmt.Errorf("remote: unknown application %q", chal.App)
	}
	prover, err := factory()
	if err != nil {
		_ = WriteFrame(conn, FrameFail, []byte("prover construction failed"))
		return err
	}
	if dict != nil {
		if err := prover.Engine.SetSpeculation(dict); err != nil {
			_ = WriteFrame(conn, FrameFail, []byte("dictionary provisioning failed"))
			return fmt.Errorf("remote: provisioning dictionary: %w", err)
		}
	}

	var sendErr error
	prover.Engine.OnReport = func(r *attest.Report) {
		if sendErr == nil {
			sendErr = WriteFrame(conn, FrameRprt, r.Encode())
		}
	}
	if _, _, err := prover.Attest(chal); err != nil {
		_ = WriteFrame(conn, FrameFail, []byte(err.Error()))
		return fmt.Errorf("remote: attested run: %w", err)
	}
	if sendErr != nil {
		return fmt.Errorf("remote: streaming reports: %w", sendErr)
	}
	return nil
}

// GatewayVerdict is the gateway's session outcome as carried by a VRDT
// frame: the full verify.Verdict stays server-side, the device only
// learns pass/fail, the typed rejection class and the detail text.
type GatewayVerdict struct {
	OK     bool
	Code   verify.ReasonCode
	Detail string
}

// Reason renders the failure as "code: detail" ("" when OK), mirroring
// verify.Verdict.Reason.
func (gv GatewayVerdict) Reason() string {
	if gv.OK {
		return ""
	}
	if gv.Detail == "" {
		return gv.Code.String()
	}
	return gv.Code.String() + ": " + gv.Detail
}

// EncodeVerdict serializes a verdict summary for a VRDT frame:
// `u8 ok | u8 code | detail`.
func EncodeVerdict(ok bool, code verify.ReasonCode, detail string) []byte {
	b := make([]byte, 2, 2+len(detail))
	if ok {
		b[0] = 1
	}
	b[1] = byte(code)
	return append(b, detail...)
}

// ErrBadVerdict is returned for malformed VRDT payloads.
var ErrBadVerdict = errors.New("remote: malformed verdict frame")

// DecodeVerdict parses a VRDT frame payload, rejecting unknown reason
// codes and inconsistent ok/code combinations.
func DecodeVerdict(b []byte) (GatewayVerdict, error) {
	if len(b) < 2 || b[0] > 1 {
		return GatewayVerdict{}, ErrBadVerdict
	}
	code := verify.ReasonCode(b[1])
	if !code.Valid() {
		return GatewayVerdict{}, fmt.Errorf("%w: unknown reason code %d", ErrBadVerdict, b[1])
	}
	ok := b[0] == 1
	if ok && code != verify.ReasonNone {
		return GatewayVerdict{}, fmt.Errorf("%w: accepted verdict carries reason %v", ErrBadVerdict, code)
	}
	return GatewayVerdict{OK: ok, Code: code, Detail: string(b[2:])}, nil
}

// AttestTo drives the prover side of one gateway session on conn.
//
// Deprecated: use NewClient(p).Attest(conn, app). This shim survives one
// release for migration and then goes away.
func (p *ProverEndpoint) AttestTo(conn io.ReadWriter, app string) (GatewayVerdict, error) {
	return p.attestBatch(conn, app, "")
}

// AttestToAs is AttestTo with a stable device identity in the HELO.
//
// Deprecated: use NewClient(p, WithDevice(device)).Attest(conn, app).
// This shim survives one release for migration and then goes away.
func (p *ProverEndpoint) AttestToAs(conn io.ReadWriter, app, device string) (GatewayVerdict, error) {
	return p.attestBatch(conn, app, device)
}

// attestBatch drives the prover side of one report-at-end gateway session
// on conn: it announces app (and the optional stable device identity a
// shard router pins sessions by) with a versioned HELO frame, adopts the
// gateway's session dictionary if one is delivered, answers the challenge
// while streaming RPRT frames, and returns the gateway's verdict. ErrBusy
// reports a shed session; ErrSessionTruncated a gateway that died
// mid-protocol.
func (p *ProverEndpoint) attestBatch(conn io.ReadWriter, app, device string) (GatewayVerdict, error) {
	var gv GatewayVerdict
	if err := WriteFrame(conn, FrameHello, EncodeHelloID(app, device)); err != nil {
		return gv, fmt.Errorf("remote: announcing app: %w", err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return gv, fmt.Errorf("remote: reading challenge: %w", mapTruncation(err))
	}
	var dict *speccfa.Dictionary
	if typ == FrameDict {
		dict, err = speccfa.DecodeDictionary(payload)
		if err != nil {
			return gv, fmt.Errorf("remote: decoding session dictionary: %w", err)
		}
		typ, payload, err = ReadFrame(conn)
		if err != nil {
			return gv, fmt.Errorf("remote: reading challenge: %w", mapTruncation(err))
		}
	}
	if err := p.serveSession(conn, typ, payload, dict); err != nil {
		return gv, err
	}
	typ, payload, err = ReadFrame(conn)
	if err != nil {
		return gv, fmt.Errorf("remote: reading verdict: %w", mapTruncation(err))
	}
	switch typ {
	case FrameVerdict:
		return DecodeVerdict(payload)
	case FrameFail:
		return gv, &PeerFailError{Context: "gateway reported failure", Msg: string(payload)}
	default:
		return gv, fmt.Errorf("remote: expected verdict frame, got type %d", typ)
	}
}

// SessionResult is what the Verifier side learns from one session.
type SessionResult struct {
	Verdict *verify.Verdict
	Reports []*attest.Report
}

// RequestAttestation drives the Verifier side of one session on conn:
// send a fresh challenge for app, collect the report chain, authenticate
// and reconstruct.
func RequestAttestation(conn io.ReadWriter, app string, verifier *verify.Verifier) (*SessionResult, error) {
	chal, err := attest.NewChallenge(app)
	if err != nil {
		return nil, err
	}
	return RequestWithChallenge(conn, chal, verifier)
}

// ReadReportStream reads the Prover's report stream from r until the
// final report, returning the ordered chain. A stream that ends early
// maps to ErrSessionTruncated; a FAIL frame surfaces the Prover's error.
// The chain is NOT authenticated here — pass it to verify.Verifier.Verify
// (or feed the reports one by one into a verify.Session).
func ReadReportStream(r io.Reader) ([]*attest.Report, error) {
	var reports []*attest.Report
	for {
		typ, payload, err := ReadFrame(r)
		if err != nil {
			return nil, fmt.Errorf("remote: reading report stream: %w", mapTruncation(err))
		}
		switch typ {
		case FrameRprt:
			rp, err := attest.DecodeReport(payload)
			if err != nil {
				return nil, err
			}
			reports = append(reports, rp)
			if rp.Final {
				return reports, nil
			}
		case FrameFail:
			return nil, &PeerFailError{Context: "prover reported failure", Msg: string(payload)}
		default:
			return nil, fmt.Errorf("remote: unexpected frame type %d in report stream", typ)
		}
	}
}

// RequestWithChallenge is RequestAttestation with a caller-supplied
// challenge (tests use it to control nonces).
func RequestWithChallenge(conn io.ReadWriter, chal attest.Challenge, verifier *verify.Verifier) (*SessionResult, error) {
	if err := WriteFrame(conn, FrameChal, chal.Encode()); err != nil {
		return nil, fmt.Errorf("remote: sending challenge: %w", err)
	}
	reports, err := CollectReports(conn)
	if err != nil {
		return nil, err
	}
	verdict, err := verifier.Verify(chal, reports)
	if err != nil {
		return nil, err
	}
	return &SessionResult{Verdict: verdict, Reports: reports}, nil
}

// CollectReports reads the Prover's report stream from r until the final
// report, returning the ordered chain.
//
// Deprecated: use ReadReportStream. This shim survives one release for
// migration and then goes away.
func CollectReports(r io.Reader) ([]*attest.Report, error) {
	return ReadReportStream(r)
}
