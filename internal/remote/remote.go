// Package remote implements the RA challenge-response protocol of paper
// §II-C over a byte stream (net.Conn, net.Pipe, ...): the Verifier sends a
// fresh challenge, the Prover runs the attested application and streams
// signed (partial) reports back as the MTB watermark fires, and the
// Verifier authenticates the chain and reconstructs the path.
//
// Wire format: length-prefixed frames, each `u8 type | u32 len | payload`.
//
//	CHAL (Verifier->Prover): attest.Challenge encoding
//	RPRT (Prover->Verifier): attest.Report encoding; the Final flag inside
//	                         the report ends the session
//	FAIL (Prover->Verifier): UTF-8 error string (unknown app, run fault)
//
// Evidence integrity does not depend on the transport: a man in the
// middle can drop the session but any modification is caught by the
// report authenticators and chain checks.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/verify"
)

// Frame types.
const (
	frameChal byte = 1
	frameRprt byte = 2
	frameFail byte = 3
)

// maxFrame bounds a frame payload (a report window plus headers).
const maxFrame = 1 << 20

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("remote: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ProverEndpoint serves attestation requests for a set of provisioned
// applications. Each request constructs a fresh Prover via the factory
// (applications are single-session).
type ProverEndpoint struct {
	factories map[string]func() (*core.Prover, error)
}

// NewProverEndpoint returns an empty endpoint.
func NewProverEndpoint() *ProverEndpoint {
	return &ProverEndpoint{factories: make(map[string]func() (*core.Prover, error))}
}

// Provision registers an application under its challenge name.
func (p *ProverEndpoint) Provision(app string, factory func() (*core.Prover, error)) {
	p.factories[app] = factory
}

// ServeOne handles a single challenge-response session on conn. Reports
// are streamed as the engine emits them (partials included), so the
// Verifier receives evidence while the application still runs.
func (p *ProverEndpoint) ServeOne(conn io.ReadWriter) error {
	typ, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("remote: reading challenge: %w", err)
	}
	if typ != frameChal {
		return fmt.Errorf("remote: expected challenge frame, got type %d", typ)
	}
	chal, err := attest.DecodeChallenge(payload)
	if err != nil {
		return err
	}
	factory, ok := p.factories[chal.App]
	if !ok {
		_ = writeFrame(conn, frameFail, []byte(fmt.Sprintf("unknown application %q", chal.App)))
		return fmt.Errorf("remote: unknown application %q", chal.App)
	}
	prover, err := factory()
	if err != nil {
		_ = writeFrame(conn, frameFail, []byte("prover construction failed"))
		return err
	}

	var sendErr error
	prover.Engine.OnReport = func(r *attest.Report) {
		if sendErr == nil {
			sendErr = writeFrame(conn, frameRprt, r.Encode())
		}
	}
	if _, _, err := prover.Attest(chal); err != nil {
		_ = writeFrame(conn, frameFail, []byte(err.Error()))
		return fmt.Errorf("remote: attested run: %w", err)
	}
	if sendErr != nil {
		return fmt.Errorf("remote: streaming reports: %w", sendErr)
	}
	return nil
}

// SessionResult is what the Verifier side learns from one session.
type SessionResult struct {
	Verdict *verify.Verdict
	Reports []*attest.Report
}

// RequestAttestation drives the Verifier side of one session on conn:
// send a fresh challenge for app, collect the report chain, authenticate
// and reconstruct.
func RequestAttestation(conn io.ReadWriter, app string, verifier *verify.Verifier) (*SessionResult, error) {
	chal, err := attest.NewChallenge(app)
	if err != nil {
		return nil, err
	}
	return RequestWithChallenge(conn, chal, verifier)
}

// RequestWithChallenge is RequestAttestation with a caller-supplied
// challenge (tests use it to control nonces).
func RequestWithChallenge(conn io.ReadWriter, chal attest.Challenge, verifier *verify.Verifier) (*SessionResult, error) {
	if err := writeFrame(conn, frameChal, chal.Encode()); err != nil {
		return nil, fmt.Errorf("remote: sending challenge: %w", err)
	}
	var reports []*attest.Report
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("remote: reading report stream: %w", err)
		}
		switch typ {
		case frameRprt:
			r, err := attest.DecodeReport(payload)
			if err != nil {
				return nil, err
			}
			reports = append(reports, r)
			if r.Final {
				verdict, err := verifier.Verify(chal, reports)
				if err != nil {
					return nil, err
				}
				return &SessionResult{Verdict: verdict, Reports: reports}, nil
			}
		case frameFail:
			return nil, fmt.Errorf("remote: prover reported failure: %s", payload)
		default:
			return nil, fmt.Errorf("remote: unexpected frame type %d", typ)
		}
	}
}

// ErrSessionTruncated is returned when the stream ends before the final
// report.
var ErrSessionTruncated = errors.New("remote: session truncated before the final report")
