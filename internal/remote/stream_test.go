package remote

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"raptrack/internal/attest"
)

// testReport builds a deterministic report for frame-level tests (the
// authenticator is arbitrary bytes — frame codecs never verify it).
func testReport(seq uint32, final bool) *attest.Report {
	r := &attest.Report{
		App:   "prime",
		Seq:   seq,
		Final: final,
		CFLog: []byte{0x10, 0x00, 0x20, 0x00, 0x40, 0x00, 0x20, 0x00},
		Auth:  bytes.Repeat([]byte{0xA5}, 32),
	}
	for i := range r.Nonce {
		r.Nonce[i] = byte(i)
	}
	for i := range r.HMem {
		r.HMem[i] = byte(0x80 + i)
	}
	return r
}

func TestSliceRoundTrip(t *testing.T) {
	rep := testReport(3, true)
	var nonce [attest.NonceSize]byte
	copy(nonce[:], rep.Nonce[:])
	s := Slice{
		Seq:    3,
		Mark:   0x40,
		Final:  true,
		Tag:    SliceTagNext(SliceTagInit(nonce), rep.Auth),
		Report: rep.Encode(),
	}
	got, err := DecodeSlice(EncodeSlice(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != s.Seq || got.Mark != s.Mark || !got.Final || got.Tag != s.Tag {
		t.Errorf("envelope drifted: got %+v", got)
	}
	if !bytes.Equal(got.Report, s.Report) {
		t.Error("wrapped report bytes drifted")
	}
	if rp, err := attest.DecodeReport(got.Report); err != nil || rp.Seq != 3 || !rp.Final {
		t.Errorf("wrapped report: %+v, %v", rp, err)
	}
}

func TestSliceDecodeMalformed(t *testing.T) {
	if _, err := DecodeSlice(nil); !errors.Is(err, ErrBadSlice) {
		t.Errorf("empty payload: %v", err)
	}
	if _, err := DecodeSlice(make([]byte, sliceHeaderSize+SliceTagSize-1)); !errors.Is(err, ErrBadSlice) {
		t.Errorf("short payload: %v", err)
	}
	b := EncodeSlice(Slice{Final: true})
	b[8] = 7 // non-canonical final flag
	if _, err := DecodeSlice(b); !errors.Is(err, ErrBadSlice) {
		t.Errorf("non-canonical final flag: %v", err)
	}
}

func TestSliceTagChain(t *testing.T) {
	var n1, n2 [attest.NonceSize]byte
	n2[0] = 1
	if SliceTagInit(n1) == SliceTagInit(n2) {
		t.Error("distinct nonces derived the same initial tag")
	}
	t0 := SliceTagInit(n1)
	a := SliceTagNext(t0, []byte("auth-1"))
	b := SliceTagNext(t0, []byte("auth-2"))
	if a == b {
		t.Error("distinct authenticators chained to the same tag")
	}
	// Order sensitivity: swapping two links changes the final tag.
	ab := SliceTagNext(SliceTagNext(t0, []byte("auth-1")), []byte("auth-2"))
	ba := SliceTagNext(SliceTagNext(t0, []byte("auth-2")), []byte("auth-1"))
	if ab == ba {
		t.Error("tag chain is order-insensitive")
	}
}

func TestHealRoundTrip(t *testing.T) {
	for _, h := range []Heal{
		{Directive: HealQuarantine, Seq: 0, Detail: "rop: return destination mismatch"},
		{Directive: HealReprovision, Seq: 7},
		{Directive: HealReattest, Seq: 2, Detail: "trace loss"},
	} {
		got, err := DecodeHeal(EncodeHeal(h))
		if err != nil || got != h {
			t.Errorf("heal round trip: got %+v, %v, want %+v", got, err, h)
		}
		ack, err := DecodeHealAck(EncodeHealAck(h))
		if err != nil || ack.Directive != h.Directive || ack.Seq != h.Seq {
			t.Errorf("ack round trip: got %+v, %v", ack, err)
		}
	}
	if _, err := DecodeHeal([]byte{1, 2}); !errors.Is(err, ErrBadHeal) {
		t.Errorf("short heal: %v", err)
	}
	if _, err := DecodeHeal([]byte{0xEE, 0, 0, 0, 0}); !errors.Is(err, ErrBadHeal) {
		t.Errorf("unknown directive: %v", err)
	}
	if _, err := DecodeHealAck([]byte{1, 0, 0, 0, 0, 9}); !errors.Is(err, ErrBadHeal) {
		t.Errorf("oversized ack: %v", err)
	}
	if _, err := DecodeHealAck([]byte{0, 0, 0, 0, 0}); !errors.Is(err, ErrBadHeal) {
		t.Errorf("zero directive ack: %v", err)
	}
}

// TestClampBusyHint pins the clamp ceiling: hints in (0, MaxBusyHint]
// pass through untouched, everything else — including the ~49-day pause
// a corrupted u32 milliseconds field can encode — collapses to "no
// usable hint".
func TestClampBusyHint(t *testing.T) {
	if MaxBusyHint != 2*time.Second {
		t.Fatalf("MaxBusyHint = %v; changing the ceiling is a behavior change for every deployed prover", MaxBusyHint)
	}
	cases := []struct {
		in, want time.Duration
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Millisecond, time.Millisecond},
		{MaxBusyHint, MaxBusyHint},
		{MaxBusyHint + time.Nanosecond, 0},
		{(1 << 31) * time.Millisecond, 0}, // flipped sign bit on the wire
		{(1<<32 - 1) * time.Millisecond, 0},
	}
	for _, c := range cases {
		if got := ClampBusyHint(c.in); got != c.want {
			t.Errorf("ClampBusyHint(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestDelayDiscardsCorruptHint: a BUSY hint beyond the ceiling must not
// floor the backoff (the old behavior would stall the prover for the
// full corrupted duration).
func TestDelayDiscardsCorruptHint(t *testing.T) {
	pol := RetryPolicy{}.withDefaults()
	pol.Rand = nil // no jitter: exact arithmetic
	d, hinted := pol.delay(1, &BusyError{RetryAfter: (1 << 31) * time.Millisecond})
	if hinted {
		t.Error("corrupted hint was honored")
	}
	if d != pol.BaseDelay {
		t.Errorf("delay = %v, want base %v", d, pol.BaseDelay)
	}
	// A plausible hint still floors the delay.
	d, hinted = pol.delay(1, &BusyError{RetryAfter: 800 * time.Millisecond})
	if !hinted || d != 800*time.Millisecond {
		t.Errorf("plausible hint: delay = %v hinted = %v", d, hinted)
	}
}

// streamGateway scripts the verifier side of one streaming session for
// tests: HELO in, CHAL out, then slices (and HEAL acks) in until the
// final slice lands. It validates the running tag chain and the slice
// sequence as it reads.
type streamGateway struct {
	t       *testing.T
	conn    net.Conn
	healAt  int  // send a HEAL after this many slices (-1: never)
	healGot Heal // the acknowledged directive
	slices  []Slice
	reports []*attest.Report
}

func (g *streamGateway) run(app string) {
	t := g.t
	defer g.conn.Close()
	typ, payload, err := ReadFrame(g.conn)
	if err != nil || typ != FrameHello {
		t.Errorf("gateway: expected HELO, got type %d err %v", typ, err)
		return
	}
	gotApp, _, err := ParseHelloID(payload)
	if err != nil || gotApp != app {
		t.Errorf("gateway: HELO app = %q, %v", gotApp, err)
		return
	}
	chal, err := attest.NewChallenge(app)
	if err != nil {
		t.Error(err)
		return
	}
	if err := WriteFrame(g.conn, FrameChal, chal.Encode()); err != nil {
		t.Error(err)
		return
	}
	tag := SliceTagInit(chal.Nonce)
	healSent := false
	ackSeen := g.healAt < 0
	finalSeen := false
	for !finalSeen || !ackSeen {
		typ, payload, err := ReadFrame(g.conn)
		if err != nil {
			t.Errorf("gateway: reading evidence: %v", err)
			return
		}
		switch typ {
		case FrameSlice:
			sl, err := DecodeSlice(payload)
			if err != nil {
				t.Errorf("gateway: %v", err)
				return
			}
			if int(sl.Seq) != len(g.slices) {
				t.Errorf("gateway: slice seq %d, want %d", sl.Seq, len(g.slices))
			}
			rep, err := attest.DecodeReport(sl.Report)
			if err != nil {
				t.Errorf("gateway: wrapped report: %v", err)
				return
			}
			tag = SliceTagNext(tag, rep.Auth)
			if sl.Tag != tag {
				t.Errorf("gateway: slice %d running tag mismatch", sl.Seq)
			}
			g.slices = append(g.slices, sl)
			g.reports = append(g.reports, rep)
			if sl.Final != rep.Final {
				t.Errorf("gateway: slice %d final bit %v != report final %v", sl.Seq, sl.Final, rep.Final)
			}
			finalSeen = sl.Final
			if !healSent && g.healAt >= 0 && len(g.slices) > g.healAt {
				healSent = true
				h := Heal{Directive: HealReattest, Seq: sl.Seq, Detail: "gateway test directive"}
				if err := WriteFrame(g.conn, FrameHeal, EncodeHeal(h)); err != nil {
					t.Errorf("gateway: sending HEAL: %v", err)
					return
				}
			}
		case FrameHealAck:
			ack, err := DecodeHealAck(payload)
			if err != nil {
				t.Errorf("gateway: %v", err)
				return
			}
			g.healGot = ack
			ackSeen = true
		case FrameFail:
			t.Errorf("gateway: prover FAIL: %s", payload)
			return
		default:
			t.Errorf("gateway: unexpected frame type %d", typ)
			return
		}
	}
	if err := WriteFrame(g.conn, FrameVerdict, EncodeVerdict(true, 0, "")); err != nil {
		t.Errorf("gateway: sending verdict: %v", err)
	}
}

// TestClientStreaming drives a full streaming session against a scripted
// gateway: slices arrive in order under a valid running tag chain, a
// mid-run HEAL directive is surfaced to the callback and acknowledged on
// the wire, and the gateway's verdict comes back to the caller.
func TestClientStreaming(t *testing.T) {
	ep, _, _ := testSetup(t, "gps", 512)
	cli, srv := net.Pipe()
	defer cli.Close()
	gw := &streamGateway{t: t, conn: srv, healAt: 1}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gw.run("gps")
	}()

	var healed []Heal
	c := NewClient(ep, WithStreaming(func(h Heal) { healed = append(healed, h) }))
	gv, err := c.Attest(cli, "gps")
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !gv.OK {
		t.Fatalf("verdict: %s", gv.Reason())
	}
	if len(gw.slices) < 5 {
		t.Errorf("expected many slices at a 512 B watermark, got %d", len(gw.slices))
	}
	if !gw.slices[len(gw.slices)-1].Final {
		t.Error("last slice not marked final")
	}
	// Watermark positions are cumulative CFLog bytes.
	var mark uint32
	for i, sl := range gw.slices {
		mark += uint32(len(gw.reports[i].CFLog))
		if sl.Mark != mark {
			t.Errorf("slice %d mark = %d, want %d", i, sl.Mark, mark)
		}
	}
	if len(healed) != 1 || healed[0].Directive != HealReattest {
		t.Fatalf("heal callback saw %+v", healed)
	}
	if gw.healGot.Directive != HealReattest || gw.healGot.Seq != healed[0].Seq {
		t.Errorf("gateway ack = %+v, callback saw %+v", gw.healGot, healed[0])
	}
}

// TestClientStreamingEarlyCut: the gateway renders its verdict after the
// first slice and hangs up. The client must surface that verdict even
// though the attested run is still producing slices whose writes now
// fail.
func TestClientStreamingEarlyCut(t *testing.T) {
	ep, _, _ := testSetup(t, "gps", 512)
	cli, srv := net.Pipe()
	defer cli.Close()
	go func() {
		defer srv.Close()
		typ, _, err := ReadFrame(srv)
		if err != nil || typ != FrameHello {
			return
		}
		chal, _ := attest.NewChallenge("gps")
		_ = WriteFrame(srv, FrameChal, chal.Encode())
		if typ, _, _ := ReadFrame(srv); typ != FrameSlice {
			return
		}
		_ = WriteFrame(srv, FrameVerdict, EncodeVerdict(false, 7, "detected mid-run"))
	}()
	c := NewClient(ep, WithStreaming(nil))
	gv, err := c.Attest(cli, "gps")
	if err != nil {
		t.Fatal(err)
	}
	if gv.OK || gv.Detail != "detected mid-run" {
		t.Fatalf("verdict = %+v", gv)
	}
}

// TestClientBatch: the Client's default (non-streaming) path speaks the
// classic RPRT protocol — byte-compatible with the deprecated AttestTo.
func TestClientBatch(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	cli, srv := net.Pipe()
	defer cli.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer srv.Close()
		typ, payload, err := ReadFrame(srv)
		if err != nil || typ != FrameHello {
			t.Errorf("expected HELO: type %d, %v", typ, err)
			return
		}
		app, device, err := ParseHelloID(payload)
		if err != nil || app != "prime" || device != "dev-42" {
			t.Errorf("HELO = (%q, %q, %v)", app, device, err)
			return
		}
		chal, _ := attest.NewChallenge("prime")
		_ = WriteFrame(srv, FrameChal, chal.Encode())
		reports, err := ReadReportStream(srv)
		if err != nil || len(reports) == 0 {
			t.Errorf("report stream: %d, %v", len(reports), err)
			return
		}
		_ = WriteFrame(srv, FrameVerdict, EncodeVerdict(true, 0, ""))
	}()
	gv, err := NewClient(ep, WithDevice("dev-42")).Attest(cli, "prime")
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !gv.OK {
		t.Fatalf("verdict: %s", gv.Reason())
	}
}

// TestClientWithFaults: the fault hook wraps the session's connection;
// a hook that corrupts the HELO must surface as a session error.
func TestClientWithFaults(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	cli, srv := net.Pipe()
	defer cli.Close()
	go func() {
		defer srv.Close()
		// Peer sees a corrupt frame header and hangs up.
		buf := make([]byte, FrameHeaderSize)
		_, _ = srv.Read(buf)
	}()
	wrapped := false
	c := NewClient(ep, WithFaults(func(rw io.ReadWriter) io.ReadWriter {
		wrapped = true
		return rw
	}))
	_, err := c.Attest(cli, "prime")
	if !wrapped {
		t.Error("fault hook never ran")
	}
	if err == nil {
		t.Error("session against a dead peer succeeded")
	}
}

// TestClientAttestDialNoRetry: without WithRetry, AttestDial makes
// exactly one attempt.
func TestClientAttestDialNoRetry(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	dials := 0
	c := NewClient(ep)
	_, st, err := c.AttestDial("prime", func() (io.ReadWriteCloser, error) {
		dials++
		cli, srv := net.Pipe()
		go func() {
			defer srv.Close()
			_, _, _ = ReadFrame(srv) // swallow HELO, hang up
		}()
		return cli, nil
	})
	if err == nil {
		t.Fatal("dead gateway accepted")
	}
	if dials != 1 || st.Attempts != 1 {
		t.Errorf("dials = %d, attempts = %d, want 1 each", dials, st.Attempts)
	}
	if !strings.Contains(err.Error(), "gave up after 1 attempts") {
		t.Errorf("err = %v", err)
	}
}

// TestClientAttestDialRetriesBusy: a BUSY shed with a hint retries on
// the configured policy and eventually succeeds.
func TestClientAttestDialRetriesBusy(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	dials := 0
	dial := func() (io.ReadWriteCloser, error) {
		dials++
		cli, srv := net.Pipe()
		n := dials
		go func() {
			defer srv.Close()
			typ, _, err := ReadFrame(srv)
			if err != nil || typ != FrameHello {
				return
			}
			if n < 3 {
				_ = WriteFrame(srv, FrameBusy, EncodeBusy(10*time.Millisecond))
				return
			}
			chal, _ := attest.NewChallenge("prime")
			_ = WriteFrame(srv, FrameChal, chal.Encode())
			if _, err := ReadReportStream(srv); err != nil {
				return
			}
			_ = WriteFrame(srv, FrameVerdict, EncodeVerdict(true, 0, ""))
		}()
		return cli, nil
	}
	var slept []time.Duration
	c := NewClient(ep, WithRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}))
	gv, st, err := c.AttestDial("prime", dial)
	if err != nil {
		t.Fatal(err)
	}
	if !gv.OK {
		t.Fatalf("verdict: %s", gv.Reason())
	}
	if st.Attempts != 3 || st.BusyHints != 2 {
		t.Errorf("stats = %+v, want 3 attempts with 2 hinted retries", st)
	}
	for _, d := range slept {
		if d < 10*time.Millisecond {
			t.Errorf("slept %v, below the BUSY hint floor", d)
		}
	}
}
