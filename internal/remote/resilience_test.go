// Transport-resilience tests: exhaustive truncation mapping, the BUSY
// retry-after extension, transient/fatal classification, and the
// Client retry loop (AttestDial) against scripted gateways.
package remote

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/verify"
)

// TestReadFrameTruncationOffsets cuts a valid frame at every possible
// byte offset: offset 0 is a clean io.EOF (stream ended between frames),
// every other offset is mid-frame and must map to ErrSessionTruncated
// backed by io.ErrUnexpectedEOF — header and payload truncations alike.
func TestReadFrameTruncationOffsets(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameRprt, []byte{0xde, 0xad, 0xbe, 0xef, 0x42}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes() // 5-byte header + 5-byte payload

	for cut := 0; cut <= len(frame); cut++ {
		typ, payload, err := ReadFrame(bytes.NewReader(frame[:cut]))
		switch {
		case cut == 0:
			if !errors.Is(err, io.EOF) || errors.Is(err, ErrSessionTruncated) {
				t.Errorf("cut 0: want clean io.EOF, got %v", err)
			}
		case cut < len(frame):
			if !errors.Is(err, ErrSessionTruncated) {
				t.Errorf("cut %d: errors.Is(ErrSessionTruncated) = false: %v", cut, err)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("cut %d: errors.Is(io.ErrUnexpectedEOF) = false: %v", cut, err)
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("cut %d: mid-frame cut reads as clean EOF: %v", cut, err)
			}
		default:
			if err != nil || typ != FrameRprt || len(payload) != 5 {
				t.Errorf("complete frame: typ=%d len=%d err=%v", typ, len(payload), err)
			}
		}
	}

	// A zero-payload frame has only header offsets to truncate at.
	hdr := []byte{FrameBusy, 0, 0, 0, 0}
	for cut := 1; cut < len(hdr); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(hdr[:cut]))
		if !errors.Is(err, ErrSessionTruncated) || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("header cut %d: %v", cut, err)
		}
	}
}

func TestBusyPayloadRoundTrip(t *testing.T) {
	if EncodeBusy(0) != nil || EncodeBusy(-time.Second) != nil {
		t.Error("non-positive hints must encode to the legacy empty payload")
	}
	if d, err := ParseBusy(nil); err != nil || d != 0 {
		t.Errorf("empty payload: d=%v err=%v", d, err)
	}
	for _, want := range []time.Duration{
		time.Millisecond, 250 * time.Millisecond, 2 * time.Second, time.Hour,
	} {
		got, err := ParseBusy(EncodeBusy(want))
		if err != nil || got != want {
			t.Errorf("round trip %v: got %v, err %v", want, got, err)
		}
	}
	// Sub-millisecond hints survive by rounding up, not truncating to the
	// legacy empty payload.
	if d, err := ParseBusy(EncodeBusy(300 * time.Microsecond)); err != nil || d != time.Millisecond {
		t.Errorf("sub-ms hint: d=%v err=%v", d, err)
	}
	for _, bad := range [][]byte{{1}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4, 5}} {
		if _, err := ParseBusy(bad); !errors.Is(err, ErrBadBusy) {
			t.Errorf("%d-byte payload: %v", len(bad), err)
		}
	}
}

// TestBusyRetryAfterSurfaced: a BUSY frame with a hint surfaces as a
// *BusyError carrying it, still matching remote.ErrBusy; a malformed hint
// degrades to a hintless shed rather than a hard error.
func TestBusyRetryAfterSurfaced(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	shed := func(payload []byte) error {
		cli, srv := net.Pipe()
		defer cli.Close()
		go func() {
			defer srv.Close()
			_ = WriteFrame(srv, FrameBusy, payload)
		}()
		return ep.ServeOne(cli)
	}

	err := shed(EncodeBusy(750 * time.Millisecond))
	var be *BusyError
	if !errors.As(err, &be) || be.RetryAfter != 750*time.Millisecond {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatal("BusyError no longer matches ErrBusy")
	}
	if !strings.Contains(err.Error(), "750ms") {
		t.Errorf("hint missing from message: %v", err)
	}

	if err := shed([]byte{1, 2, 3}); !errors.As(err, &be) || be.RetryAfter != 0 {
		t.Errorf("malformed hint should degrade to a hintless shed: %v", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"nil", nil, ClassNone},
		{"protocol mismatch", ErrProtocolMismatch, ClassFatal},
		{"wrapped mismatch", &PeerFailError{Context: "gateway reported failure", Msg: "remote: protocol version mismatch: peer speaks v1"}, ClassFatal},
		{"unknown app", &PeerFailError{Context: "verifier rejected session", Msg: `unknown application "ghost"`}, ClassFatal},
		{"peer transient", &PeerFailError{Context: "prover reported failure", Msg: "engine on fire"}, ClassTransient},
		{"busy", &BusyError{}, ClassTransient},
		{"busy with hint", &BusyError{RetryAfter: time.Second}, ClassTransient},
		{"truncated", ErrSessionTruncated, ClassTransient},
		{"io", io.ErrUnexpectedEOF, ClassTransient},
		{"anything else", errors.New("socket weather"), ClassTransient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if ClassNone.String() != "none" || ClassTransient.String() != "transient" || ClassFatal.String() != "fatal" {
		t.Error("ErrorClass names")
	}
}

// scriptedDialer hands the retrying client one net.Pipe per attempt, serving
// each with the script selected by attempt number (1-based); scripts
// beyond the list reuse the last one.
func scriptedDialer(t *testing.T, scripts ...func(conn net.Conn)) func() (io.ReadWriteCloser, error) {
	t.Helper()
	attempt := 0
	return func() (io.ReadWriteCloser, error) {
		script := scripts[min(attempt, len(scripts)-1)]
		attempt++
		cli, srv := net.Pipe()
		go func() {
			defer srv.Close()
			script(srv)
		}()
		return cli, nil
	}
}

// gatewayOK is a minimal in-test gateway: HELO -> CHAL -> collect -> VRDT.
func gatewayOK(t *testing.T, v *verify.Verifier) func(conn net.Conn) {
	t.Helper()
	return func(conn net.Conn) {
		typ, payload, err := ReadFrame(conn)
		if err != nil || typ != FrameHello {
			return
		}
		app, err := ParseHello(payload)
		if err != nil {
			return
		}
		chal, err := attest.NewChallenge(app)
		if err != nil {
			return
		}
		if err := WriteFrame(conn, FrameChal, chal.Encode()); err != nil {
			return
		}
		reports, err := ReadReportStream(conn)
		if err != nil {
			return
		}
		vd, err := v.Verify(chal, reports)
		if err != nil {
			_ = WriteFrame(conn, FrameFail, []byte(err.Error()))
			return
		}
		_ = WriteFrame(conn, FrameVerdict, EncodeVerdict(vd.OK, vd.Code, vd.Detail))
	}
}

func busyScript(hint time.Duration) func(conn net.Conn) {
	return func(conn net.Conn) {
		_, _, _ = ReadFrame(conn) // HELO
		_ = WriteFrame(conn, FrameBusy, EncodeBusy(hint))
	}
}

func TestClientRetryRecoversFromBusy(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	var slept []time.Duration
	pol := RetryPolicy{
		BaseDelay: time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
	}
	dial := scriptedDialer(t,
		busyScript(50*time.Millisecond),
		busyScript(0),
		gatewayOK(t, v),
	)
	gv, st, err := NewClient(ep, WithRetry(pol)).AttestDial("prime", dial)
	if err != nil {
		t.Fatal(err)
	}
	if !gv.OK {
		t.Fatalf("verdict: %s", gv.Reason())
	}
	if st.Attempts != 3 || st.Retries != 2 || st.BusyHints != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times", len(slept))
	}
	// The hinted shed floors the first backoff at the gateway's 50ms; the
	// hintless one falls back to exponential backoff (base 1ms, attempt 2).
	if slept[0] < 50*time.Millisecond {
		t.Errorf("hinted delay %v below the 50ms retry-after floor", slept[0])
	}
	if slept[1] != 2*time.Millisecond {
		t.Errorf("unhinted delay = %v, want 2ms", slept[1])
	}
	if st.Waited != slept[0]+slept[1] {
		t.Errorf("Waited = %v, slept %v", st.Waited, slept)
	}
}

// TestClientRetryFatalConfirmedAborts: a repeating fatal error is
// confirmed by exactly one (cheap, pre-run) extra attempt, then surfaces
// as the cause itself — not as budget exhaustion.
func TestClientRetryFatalConfirmedAborts(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	dial := scriptedDialer(t, func(conn net.Conn) {
		_, _, _ = ReadFrame(conn)
		_ = WriteFrame(conn, FrameFail, []byte(`unknown application "prime"`))
	})
	_, st, err := NewClient(ep, WithRetry(RetryPolicy{
		Sleep: func(time.Duration) {},
	})).AttestDial("prime", dial)
	if err == nil || Classify(err) != ClassFatal {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(err.Error(), "gave up") {
		t.Errorf("confirmed fatal must surface the cause, not budget exhaustion: %v", err)
	}
	if st.Attempts != 2 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestClientRetrySpuriousFatalRecovers: one attempt *reads* as fatal
// (a corrupted HELO answered with unknown-application), the next is
// healthy — the retry loop must treat the unconfirmed fatal as transient
// and complete the session.
func TestClientRetrySpuriousFatalRecovers(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	dial := scriptedDialer(t,
		func(conn net.Conn) {
			_, _, _ = ReadFrame(conn)
			_ = WriteFrame(conn, FrameFail, []byte(`unknown application "pzime"`))
		},
		gatewayOK(t, v),
	)
	gv, st, err := NewClient(ep, WithRetry(RetryPolicy{Sleep: func(time.Duration) {}})).AttestDial("prime", dial)
	if err != nil || !gv.OK {
		t.Fatalf("gv=%+v err=%v", gv, err)
	}
	if st.Attempts != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestClientRetryAttemptTimeout: a peer that promises a payload it
// never sends cannot pin the prover forever — the attempt deadline
// force-closes the connection, the attempt fails transient, and the next
// one succeeds.
func TestClientRetryAttemptTimeout(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	hang := make(chan struct{})
	defer close(hang)
	dial := scriptedDialer(t,
		func(conn net.Conn) {
			_, _, _ = ReadFrame(conn) // HELO
			// A CHAL header declaring 512 KiB that will never arrive — the
			// shape a wire-corrupted length field takes.
			_, _ = conn.Write([]byte{FrameChal, 0x00, 0x00, 0x08, 0x00})
			<-hang
		},
		gatewayOK(t, v),
	)
	start := time.Now()
	// 500ms: long enough for a full healthy session even under -race,
	// short enough that the hung attempt visibly cannot stall the test.
	gv, st, err := NewClient(ep, WithRetry(RetryPolicy{
		AttemptTimeout: 500 * time.Millisecond,
		Sleep:          func(time.Duration) {},
	})).AttestDial("prime", dial)
	if err != nil || !gv.OK {
		t.Fatalf("gv=%+v err=%v", gv, err)
	}
	if st.Attempts != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("hung attempt survived %v despite the 500ms attempt timeout", el)
	}
}

func TestClientRetryExhaustsBudget(t *testing.T) {
	ep, _, _ := testSetup(t, "prime", 0)
	dial := scriptedDialer(t, func(conn net.Conn) {
		_, _, _ = ReadFrame(conn) // read HELO, then vanish mid-session
	})
	_, st, err := NewClient(ep, WithRetry(RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
	})).AttestDial("prime", dial)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, ErrSessionTruncated) {
		t.Fatalf("budget-exhausted error must keep the last cause: %v", err)
	}
	if st.Attempts != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientRetryRecoversFromDialError(t *testing.T) {
	ep, v, _ := testSetup(t, "prime", 0)
	ok := scriptedDialer(t, gatewayOK(t, v))
	first := true
	dial := func() (io.ReadWriteCloser, error) {
		if first {
			first = false
			return nil, errors.New("connection refused")
		}
		return ok()
	}
	gv, st, err := NewClient(ep, WithRetry(RetryPolicy{Sleep: func(time.Duration) {}})).AttestDial("prime", dial)
	if err != nil || !gv.OK {
		t.Fatalf("gv=%+v err=%v", gv, err)
	}
	if st.Attempts != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetryPolicyBackoff pins the deterministic backoff shape: doubling
// from BaseDelay, capped at MaxDelay, jitter only when a Rand is supplied,
// and the BUSY hint as a floor — all without sleeping.
func TestRetryPolicyBackoff(t *testing.T) {
	pol := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}.withDefaults()
	pol.Rand = nil // deterministic
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if d, hinted := pol.delay(i+1, errors.New("x")); d != w*time.Millisecond || hinted {
			t.Errorf("attempt %d: delay = %v hinted=%v, want %v", i+1, d, hinted, w*time.Millisecond)
		}
	}
	// A BUSY hint floors, never lowers, the computed backoff.
	if d, hinted := pol.delay(1, &BusyError{RetryAfter: 100 * time.Millisecond}); d != 100*time.Millisecond || !hinted {
		t.Errorf("hint above backoff: %v hinted=%v", d, hinted)
	}
	if d, hinted := pol.delay(3, &BusyError{RetryAfter: time.Millisecond}); d != 40*time.Millisecond || !hinted {
		t.Errorf("hint below backoff must not lower it: %v hinted=%v", d, hinted)
	}
	// Jitter spreads around the base delay within ±Jitter.
	pol.Rand = rand.New(rand.NewSource(1))
	pol.Jitter = 0.5
	for i := 0; i < 100; i++ {
		d, _ := pol.delay(1, errors.New("x"))
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("jittered delay %v outside [5ms, 15ms]", d)
		}
	}
	// Huge attempt numbers must not overflow into negative delays.
	pol.Rand = nil
	if d, _ := pol.delay(80, errors.New("x")); d != pol.MaxDelay {
		t.Errorf("overflow-prone attempt: delay = %v", d)
	}
}
