// Prover-side resilience: typed transient-vs-fatal classification of
// session failures, and the retry loop behind Client.AttestDial —
// exponential backoff with jitter, a fresh session (and therefore a
// fresh gateway challenge) per attempt, and sanitized BUSY retry-after
// hints honored as the backoff floor.
package remote

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// ErrorClass partitions session failures for retry decisions.
type ErrorClass uint8

const (
	// ClassNone classifies a nil error.
	ClassNone ErrorClass = iota
	// ClassTransient marks transport-shaped failures — sheds, stalls,
	// truncations, corrupted frames, timeouts. The fault may not recur,
	// so a fresh session is worth the attempt.
	ClassTransient
	// ClassFatal marks semantic failures — protocol version mismatch, an
	// unprovisioned application. An identical retry fails identically.
	ClassFatal
)

func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	default:
		return "fatal"
	}
}

// Classify types a session error for retry purposes. The default is
// transient: evidence integrity never depends on the transport (any
// tampering is caught by the report authenticators server-side and
// surfaces here as a FAIL frame or decode error), so retrying an
// unrecognized failure is safe — it can only cost budget, not soundness.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassNone
	}
	if errors.Is(err, ErrProtocolMismatch) {
		return ClassFatal
	}
	var pf *PeerFailError
	if errors.As(err, &pf) && pf.Fatal() {
		return ClassFatal
	}
	return ClassTransient
}

// RetryPolicy tunes AttestWithRetry. The zero value selects the
// documented defaults.
type RetryPolicy struct {
	// MaxAttempts bounds total sessions tried, first included (default 5).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly over ±Jitter×delay to
	// de-synchronize a fleet retrying against the same gateway (default
	// 0.2 when Rand is set). Jitter requires Rand: without a caller-owned
	// source the spread could not be made deterministic for tests.
	Jitter float64
	// Rand drives the jitter. Nil disables jitter entirely.
	Rand *rand.Rand
	// AttemptTimeout bounds one attempt's wall clock; on expiry the
	// attempt's connection is force-closed, failing the attempt with a
	// transient error (default 0: unbounded). This is the prover's only
	// escape from a read pinned forever — e.g. a corrupted frame length
	// field promising a payload the peer will never send.
	AttemptTimeout time.Duration
	// Sleep replaces time.Sleep between attempts (tests). Nil: time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes each scheduled retry: the attempt
	// that just failed (1-based), its error, and the upcoming delay.
	OnRetry func(attempt int, err error, delay time.Duration)
	// Observe, when non-nil, receives the final RetryStats exactly once
	// per AttestWithRetry call — on success, fatal abort, or exhausted
	// budget alike. This is the observability layer's tap: deployments
	// fold attempts and BUSY hints into a metrics registry here without
	// threading counters through every call site.
	Observe func(RetryStats)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// MaxBusyHint is the ceiling on a BUSY retry-after hint a prover will
// honor. The hint rides the wire as a u32 millisecond count, so a
// corrupted frame can promise a ~49-day backoff; any hint beyond this
// ceiling is treated as corrupted and discarded rather than letting a
// flipped bit stall the prover.
const MaxBusyHint = 2 * time.Second

// ClampBusyHint sanitizes a parsed BUSY retry-after hint: values that
// are non-positive or implausibly large (beyond MaxBusyHint — a
// corrupted u32 on the wire) collapse to 0, meaning "no usable hint".
// This is the single clamp every hint consumer shares (RetryPolicy
// here, the fleet simulator's retry profiles).
func ClampBusyHint(hint time.Duration) time.Duration {
	if hint <= 0 || hint > MaxBusyHint {
		return 0
	}
	return hint
}

// delay computes the backoff before retrying after the given 1-based
// failed attempt, honoring a (sanitized) BUSY retry-after hint as the
// backoff floor.
func (p RetryPolicy) delay(attempt int, err error) (d time.Duration, hinted bool) {
	d = p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 { // <=0: shift overflow
		d = p.MaxDelay
	}
	var be *BusyError
	if errors.As(err, &be) {
		if hint := ClampBusyHint(be.RetryAfter); hint > 0 {
			hinted = true
			if hint > d {
				d = hint
			}
		}
	}
	if p.Rand != nil && p.Jitter > 0 {
		spread := 1 + p.Jitter*(2*p.Rand.Float64()-1)
		d = time.Duration(float64(d) * spread)
	}
	return d, hinted
}

// RetryStats summarizes one AttestWithRetry call.
type RetryStats struct {
	Attempts  int           // sessions dialed (>= 1)
	Retries   int           // Attempts - 1
	BusyHints int           // retries whose delay honored a BUSY retry-after hint
	Waited    time.Duration // total backoff scheduled between attempts
}

// AttestWithRetry drives gateway sessions for app until one completes,
// a fatal error is hit, or the attempt budget runs out.
//
// Deprecated: use NewClient(p, WithRetry(pol)).AttestDial(app, dial).
// This shim survives one release for migration and then goes away.
func (p *ProverEndpoint) AttestWithRetry(app string, dial func() (io.ReadWriteCloser, error), pol RetryPolicy) (GatewayVerdict, RetryStats, error) {
	return p.attestRetry(dial, pol, func(conn io.ReadWriter) (GatewayVerdict, error) {
		return p.attestBatch(conn, app, "")
	})
}

// attestRetry drives gateway sessions until one completes, a fatal error
// is hit, or the attempt budget runs out. Each attempt dials a fresh
// connection and runs session on it — the gateway issues a fresh
// challenge per session, so no nonce is ever reused across retries —
// with exponential backoff (plus optional jitter) in between. A BUSY
// shed whose frame carries a plausible retry-after hint floors the next
// delay at the hint (see ClampBusyHint).
//
// A fatal classification (see Classify) aborts only once *confirmed* by a
// second consecutive fatal attempt. A genuinely unprovisioned app or
// version skew fails identically — and cheaply, on the pre-run handshake
// — every time; a wire corruption that merely reads as fatal (one flipped
// HELO bit turning the app name unrecognizable) does not recur, so a
// single confirmation retry converts a spurious hard failure back into a
// transient one without ever retrying a real fatal more than once.
//
// The returned GatewayVerdict may still report a rejection; "the session
// completed" and "the evidence attested a benign path" stay as separate
// concerns, exactly as in Client.Attest.
func (p *ProverEndpoint) attestRetry(dial func() (io.ReadWriteCloser, error), pol RetryPolicy, session func(io.ReadWriter) (GatewayVerdict, error)) (GatewayVerdict, RetryStats, error) {
	pol = pol.withDefaults()
	var st RetryStats
	if pol.Observe != nil {
		defer func() { pol.Observe(st) }()
	}
	var lastErr error
	fatalStreak := 0
	for attempt := 1; ; attempt++ {
		st.Attempts = attempt
		st.Retries = attempt - 1
		conn, err := dial()
		if err == nil {
			var timer *time.Timer
			if pol.AttemptTimeout > 0 {
				timer = time.AfterFunc(pol.AttemptTimeout, func() { conn.Close() })
			}
			var gv GatewayVerdict
			gv, err = session(conn)
			if timer != nil {
				timer.Stop()
			}
			conn.Close()
			if err == nil {
				return gv, st, nil
			}
		}
		lastErr = err
		if Classify(err) == ClassFatal {
			if fatalStreak++; fatalStreak >= 2 {
				return GatewayVerdict{}, st, err
			}
		} else {
			fatalStreak = 0
		}
		if attempt == pol.MaxAttempts {
			break
		}
		d, hinted := pol.delay(attempt, err)
		if hinted {
			st.BusyHints++
		}
		st.Waited += d
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, err, d)
		}
		pol.Sleep(d)
	}
	return GatewayVerdict{}, st, fmt.Errorf("remote: attestation gave up after %d attempts: %w", st.Attempts, lastErr)
}
