package remote

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
	"raptrack/internal/verify"
)

// The golden fixtures under testdata/golden/ pin the exact wire bytes of
// every gateway-protocol frame whose encoding is deterministic: the v2
// HELO, the session DICT, both BUSY forms, and accepted/rejected VRDT
// summaries. Deployed provers parse these frames byte-for-byte, so any
// drift — a reordered field, a changed version constant, a different
// endianness — is a protocol break even when this repo's own encoder and
// decoder still agree with each other. Regenerate deliberately with
//
//	go test ./internal/remote -run TestGoldenFrames -update
//
// and treat the resulting diff as a wire-format change to be reviewed as
// such.
var update = flag.Bool("update", false, "rewrite the golden wire-format fixtures")

// goldenDict is a fixed two-path speculation set. NewDictionary sorts
// longest-first, so the 3-packet path travels before the 2-packet one;
// the fixture pins that canonical order too.
func goldenDict(t *testing.T) *speccfa.Dictionary {
	t.Helper()
	d, err := speccfa.NewDictionary(
		[]trace.Packet{{Src: 0x200010, Dst: 0x200040}, {Src: 0x200052, Dst: 0x200014}},
		[]trace.Packet{{Src: 0x200014, Dst: 0x20001C}, {Src: 0x200020, Dst: 0x200008}, {Src: 0x200008, Dst: 0x200030}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// goldenSlice is a fixed streaming slice wrapping a deterministic
// report, its tag chained from the report's nonce and authenticator.
func goldenSlice() Slice {
	rep := testReport(3, true)
	var nonce [attest.NonceSize]byte
	copy(nonce[:], rep.Nonce[:])
	return Slice{
		Seq:    3,
		Mark:   0x40,
		Final:  true,
		Tag:    SliceTagNext(SliceTagInit(nonce), rep.Auth),
		Report: rep.Encode(),
	}
}

func TestGoldenFrames(t *testing.T) {
	dict := goldenDict(t)
	cases := []struct {
		name    string
		typ     byte
		payload []byte
		// check re-parses the payload as read back from the fixture, so
		// the decoders are exercised against the pinned bytes (not just
		// against whatever the current encoder happens to emit).
		check func(t *testing.T, payload []byte)
	}{
		{
			name: "helo-v2", typ: FrameHello, payload: EncodeHello("prime"),
			check: func(t *testing.T, p []byte) {
				app, err := ParseHello(p)
				if err != nil || app != "prime" {
					t.Errorf("ParseHello = %q, %v", app, err)
				}
			},
		},
		{
			name: "dict", typ: FrameDict, payload: dict.Encode(),
			check: func(t *testing.T, p []byte) {
				d, err := speccfa.DecodeDictionary(p)
				if err != nil {
					t.Fatalf("DecodeDictionary: %v", err)
				}
				if d.Len() != 2 || len(d.Paths()[0].Packets) != 3 {
					t.Errorf("dictionary shape: len=%d", d.Len())
				}
				if !bytes.Equal(d.Encode(), p) {
					t.Error("dictionary encoding is not a fixed point of decode")
				}
			},
		},
		{
			name: "busy-nohint", typ: FrameBusy, payload: EncodeBusy(0),
			check: func(t *testing.T, p []byte) {
				if d, err := ParseBusy(p); err != nil || d != 0 {
					t.Errorf("ParseBusy = %v, %v", d, err)
				}
			},
		},
		{
			name: "busy-hint", typ: FrameBusy, payload: EncodeBusy(250 * time.Millisecond),
			check: func(t *testing.T, p []byte) {
				if d, err := ParseBusy(p); err != nil || d != 250*time.Millisecond {
					t.Errorf("ParseBusy = %v, %v", d, err)
				}
			},
		},
		{
			name: "vrdt-ok", typ: FrameVerdict, payload: EncodeVerdict(true, verify.ReasonNone, ""),
			check: func(t *testing.T, p []byte) {
				gv, err := DecodeVerdict(p)
				if err != nil || !gv.OK || gv.Code != verify.ReasonNone || gv.Detail != "" {
					t.Errorf("DecodeVerdict = %+v, %v", gv, err)
				}
			},
		},
		{
			name: "vrdt-reject", typ: FrameVerdict, payload: EncodeVerdict(false, verify.ReasonROP, "return destination mismatch"),
			check: func(t *testing.T, p []byte) {
				gv, err := DecodeVerdict(p)
				if err != nil || gv.OK || gv.Code != verify.ReasonROP || gv.Detail != "return destination mismatch" {
					t.Errorf("DecodeVerdict = %+v, %v", gv, err)
				}
			},
		},
		{
			name: "slice", typ: FrameSlice, payload: EncodeSlice(goldenSlice()),
			check: func(t *testing.T, p []byte) {
				sl, err := DecodeSlice(p)
				if err != nil {
					t.Fatalf("DecodeSlice: %v", err)
				}
				want := goldenSlice()
				if sl.Seq != want.Seq || sl.Mark != want.Mark || !sl.Final || sl.Tag != want.Tag {
					t.Errorf("DecodeSlice = %+v", sl)
				}
				if rp, err := attest.DecodeReport(sl.Report); err != nil || rp.Seq != 3 || !rp.Final {
					t.Errorf("wrapped report = %+v, %v", rp, err)
				}
			},
		},
		{
			name: "heal", typ: FrameHeal, payload: EncodeHeal(Heal{Directive: HealQuarantine, Seq: 3, Detail: "rop: return destination mismatch"}),
			check: func(t *testing.T, p []byte) {
				h, err := DecodeHeal(p)
				if err != nil || h.Directive != HealQuarantine || h.Seq != 3 || h.Detail != "rop: return destination mismatch" {
					t.Errorf("DecodeHeal = %+v, %v", h, err)
				}
			},
		},
		{
			name: "healack", typ: FrameHealAck, payload: EncodeHealAck(Heal{Directive: HealQuarantine, Seq: 3}),
			check: func(t *testing.T, p []byte) {
				h, err := DecodeHealAck(p)
				if err != nil || h.Directive != HealQuarantine || h.Seq != 3 {
					t.Errorf("DecodeHealAck = %+v, %v", h, err)
				}
			},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, c.typ, c.payload); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()
			path := filepath.Join("testdata", "golden", c.name+".hex")

			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(formatHex(got)), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			fixture, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			want, err := parseHex(fixture)
			if err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("wire bytes drifted from %s\n got: %x\nwant: %x", path, got, want)
			}

			// Round-trip the pinned bytes through the frame reader and the
			// frame-specific decoder.
			typ, payload, err := ReadFrame(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("ReadFrame on fixture: %v", err)
			}
			if typ != c.typ || !bytes.Equal(payload, c.payload) {
				t.Fatalf("ReadFrame = (%d, %x), want (%d, %x)", typ, payload, c.typ, c.payload)
			}
			c.check(t, payload)
		})
	}
}

// TestGoldenFixturesComplete fails when a fixture file exists that no
// test case covers — a leftover after a rename would otherwise pin
// nothing while looking authoritative.
func TestGoldenFixturesComplete(t *testing.T) {
	covered := map[string]bool{
		"helo-v2.hex": true, "dict.hex": true,
		"busy-nohint.hex": true, "busy-hint.hex": true,
		"vrdt-ok.hex": true, "vrdt-reject.hex": true,
		"slice.hex": true, "heal.hex": true, "healack.hex": true,
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("fixture dir missing (run TestGoldenFrames with -update): %v", err)
	}
	for _, e := range entries {
		if !covered[e.Name()] {
			t.Errorf("orphan fixture %s: no test case pins it", e.Name())
		}
	}
	if len(entries) != len(covered) {
		t.Errorf("fixture count = %d, want %d", len(entries), len(covered))
	}
}

// formatHex renders data as lowercase hex, 16 bytes per line, so fixture
// diffs stay reviewable.
func formatHex(data []byte) string {
	var b strings.Builder
	for i := 0; i < len(data); i += 16 {
		end := i + 16
		if end > len(data) {
			end = len(data)
		}
		fmt.Fprintf(&b, "%x\n", data[i:end])
	}
	return b.String()
}

// parseHex inverts formatHex, ignoring all whitespace.
func parseHex(data []byte) ([]byte, error) {
	clean := strings.Join(strings.Fields(string(data)), "")
	return hex.DecodeString(clean)
}
