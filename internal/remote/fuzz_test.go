package remote

import (
	"bytes"
	"testing"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/verify"
)

// frameSeed builds one valid frame encoding for the seed corpus.
func frameSeed(typ byte, payload []byte) []byte {
	var b bytes.Buffer
	if err := WriteFrame(&b, typ, payload); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// FuzzReadFrame feeds arbitrary bytes to the frame parser: it must never
// panic, and whatever it accepts must re-encode to the bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	chal, err := attest.NewChallenge("prime")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frameSeed(FrameChal, chal.Encode()))
	f.Add(frameSeed(FrameRprt, (&attest.Report{App: "prime", Final: true}).Encode()))
	f.Add(frameSeed(FrameFail, []byte("unknown application")))
	f.Add(frameSeed(FrameHello, EncodeHello("gps")))
	f.Add(frameSeed(FrameBusy, nil))
	f.Add(frameSeed(FrameVerdict, EncodeVerdict(false, verify.ReasonHMemMismatch, "H_MEM mismatch")))
	f.Add([]byte{})
	f.Add([]byte{FrameRprt, 0xff, 0xff, 0xff, 0xff}) // oversized declaration
	f.Add([]byte{FrameChal, 0x10, 0x00, 0x00, 0x00}) // truncated payload

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		if got := frameSeed(typ, payload); !bytes.Equal(got, data[:consumed]) {
			t.Fatalf("re-encode mismatch: parsed (%d, %d B) from %x", typ, len(payload), data[:consumed])
		}
	})
}

// FuzzParseBusy checks the BUSY retry-after payload parser never panics,
// never returns a negative hint, and round-trips every payload it
// accepts (the all-zero hint canonicalizes to the legacy empty payload).
func FuzzParseBusy(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBusy(time.Millisecond))
	f.Add(EncodeBusy(30 * time.Second))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseBusy(data)
		if err != nil {
			if d != 0 {
				t.Fatalf("error with non-zero hint %v", d)
			}
			return
		}
		if d < 0 {
			t.Fatalf("negative retry-after %v from %x", d, data)
		}
		reenc := EncodeBusy(d)
		if d == 0 {
			if reenc != nil {
				t.Fatalf("zero hint re-encoded to %x", reenc)
			}
			return
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("re-encode mismatch: %x -> %v -> %x", data, d, reenc)
		}
	})
}

// FuzzDecodeVerdict checks the VRDT payload parser never panics and
// round-trips what it accepts.
func FuzzDecodeVerdict(f *testing.F) {
	f.Add(EncodeVerdict(true, verify.ReasonNone, ""))
	f.Add(EncodeVerdict(false, verify.ReasonUnexplained, "no benign path explains the evidence"))
	f.Add([]byte{})
	f.Add([]byte{2})
	f.Add([]byte{0, 0xee})
	f.Fuzz(func(t *testing.T, data []byte) {
		gv, err := DecodeVerdict(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeVerdict(gv.OK, gv.Code, gv.Detail), data) {
			t.Fatalf("re-encode mismatch for %x", data)
		}
	})
}
