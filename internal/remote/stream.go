// Streaming attestation (ACFA-style): instead of buffering the session's
// reports behind RPRT frames and learning the verdict at report-end, the
// prover wraps each partial report in a SLICE frame as the MTB watermark
// fires, and the gateway verifies slice-by-slice against a resumable
// verify.Session — bounding detection latency by the slice size rather
// than the run length. On a suspect or rejected slice the gateway pushes
// a typed HEAL directive mid-run (quarantine the app, re-provision
// H_MEM, force re-attestation), which the prover acknowledges.
//
// Transport-integrity for the slice sequence rides a running
// authentication tag: tag_0 = SHA-256(domain || nonce), tag_i =
// SHA-256(tag_{i-1} || Auth_i). Report authenticators already bind all
// evidence cryptographically; the running tag additionally binds slice
// ORDER and COUNT to the session, so a middlebox dropping, duplicating
// or reordering slices is detected at the frame layer with one hash,
// before report authentication runs.
package remote

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"raptrack/internal/attest"
	"raptrack/internal/speccfa"
)

// sliceTagDomain separates the slice-chain hash from every other SHA-256
// use in the protocol.
const sliceTagDomain = "raptrack-slice-v1"

// SliceTagSize is the running-auth tag size in bytes.
const SliceTagSize = sha256.Size

// SliceTagInit derives the session's initial running tag from the
// challenge nonce.
func SliceTagInit(nonce [attest.NonceSize]byte) [SliceTagSize]byte {
	h := sha256.New()
	h.Write([]byte(sliceTagDomain))
	h.Write(nonce[:])
	var tag [SliceTagSize]byte
	h.Sum(tag[:0])
	return tag
}

// SliceTagNext chains the running tag over one report authenticator.
func SliceTagNext(prev [SliceTagSize]byte, auth []byte) [SliceTagSize]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(auth)
	var tag [SliceTagSize]byte
	h.Sum(tag[:0])
	return tag
}

// Slice is one SLICE frame: a partial report plus its streaming envelope.
type Slice struct {
	// Seq numbers slices from zero; it mirrors the wrapped report's Seq
	// (the gateway checks both independently — Seq at the frame layer,
	// report ordering in the chain).
	Seq uint32
	// Mark is the prover's MTB watermark position: cumulative CFLog bytes
	// emitted through this slice.
	Mark uint32
	// Final marks the session's last slice.
	Final bool
	// Tag is the running authentication tag through this slice.
	Tag [SliceTagSize]byte
	// Report is the wrapped attest.Report encoding.
	Report []byte
}

// sliceHeaderSize is the fixed `u32 seq | u32 mark | u8 final` prefix
// before the tag.
const sliceHeaderSize = 4 + 4 + 1

// EncodeSlice serializes a SLICE frame payload:
// `u32 seq | u32 mark | u8 final | tag[32] | report encoding`.
func EncodeSlice(s Slice) []byte {
	b := make([]byte, 0, sliceHeaderSize+SliceTagSize+len(s.Report))
	b = binary.LittleEndian.AppendUint32(b, s.Seq)
	b = binary.LittleEndian.AppendUint32(b, s.Mark)
	if s.Final {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, s.Tag[:]...)
	return append(b, s.Report...)
}

// ErrBadSlice is returned for malformed SLICE frame payloads.
var ErrBadSlice = errors.New("remote: malformed slice frame")

// DecodeSlice parses a SLICE frame payload. The wrapped report encoding
// is returned undecoded (attest.DecodeReport judges it separately).
func DecodeSlice(b []byte) (Slice, error) {
	if len(b) < sliceHeaderSize+SliceTagSize {
		return Slice{}, fmt.Errorf("%w: %d bytes", ErrBadSlice, len(b))
	}
	var s Slice
	s.Seq = binary.LittleEndian.Uint32(b)
	s.Mark = binary.LittleEndian.Uint32(b[4:])
	switch b[8] {
	case 0:
	case 1:
		s.Final = true
	default:
		return Slice{}, fmt.Errorf("%w: non-canonical final flag %d", ErrBadSlice, b[8])
	}
	copy(s.Tag[:], b[sliceHeaderSize:])
	s.Report = append([]byte(nil), b[sliceHeaderSize+SliceTagSize:]...)
	return s, nil
}

// HealDirective is the gateway's typed remediation order.
type HealDirective uint8

const (
	// HealQuarantine: stop scheduling the application until re-provisioned
	// (evidence attests a disallowed execution).
	HealQuarantine HealDirective = 1
	// HealReprovision: the measured firmware does not match the golden
	// image; re-provision program memory and its H_MEM.
	HealReprovision HealDirective = 2
	// HealReattest: evidence was inconclusive (detectable trace loss) or
	// the session broke; run a fresh attestation session.
	HealReattest HealDirective = 3
)

func (d HealDirective) String() string {
	switch d {
	case HealQuarantine:
		return "quarantine-app"
	case HealReprovision:
		return "re-provision-hmem"
	case HealReattest:
		return "force-reattest"
	default:
		return fmt.Sprintf("invalid-heal-%d", uint8(d))
	}
}

// Valid reports whether d is a defined directive (wire decoding guard).
func (d HealDirective) Valid() bool {
	return d >= HealQuarantine && d <= HealReattest
}

// Heal is one HEAL frame: a remediation directive pushed by the gateway,
// during the run (reacting to a slice) or with the final verdict. The
// prover echoes directive and seq back in a HEALACK frame.
type Heal struct {
	Directive HealDirective
	// Seq is the slice that triggered the directive.
	Seq uint32
	// Detail is the gateway's human-readable reason.
	Detail string
}

// ErrBadHeal is returned for malformed HEAL/HEALACK frame payloads.
var ErrBadHeal = errors.New("remote: malformed heal frame")

// EncodeHeal serializes a HEAL frame payload:
// `u8 directive | u32 seq | detail`.
func EncodeHeal(h Heal) []byte {
	b := make([]byte, 0, 5+len(h.Detail))
	b = append(b, byte(h.Directive))
	b = binary.LittleEndian.AppendUint32(b, h.Seq)
	return append(b, h.Detail...)
}

// DecodeHeal parses a HEAL frame payload.
func DecodeHeal(b []byte) (Heal, error) {
	if len(b) < 5 {
		return Heal{}, fmt.Errorf("%w: %d bytes", ErrBadHeal, len(b))
	}
	h := Heal{
		Directive: HealDirective(b[0]),
		Seq:       binary.LittleEndian.Uint32(b[1:]),
		Detail:    string(b[5:]),
	}
	if !h.Directive.Valid() {
		return Heal{}, fmt.Errorf("%w: unknown directive %d", ErrBadHeal, b[0])
	}
	return h, nil
}

// EncodeHealAck serializes a HEALACK payload: the acknowledged
// directive and slice, `u8 directive | u32 seq`.
func EncodeHealAck(h Heal) []byte {
	b := make([]byte, 0, 5)
	b = append(b, byte(h.Directive))
	return binary.LittleEndian.AppendUint32(b, h.Seq)
}

// DecodeHealAck parses a HEALACK payload.
func DecodeHealAck(b []byte) (Heal, error) {
	if len(b) != 5 {
		return Heal{}, fmt.Errorf("%w: ack of %d bytes", ErrBadHeal, len(b))
	}
	h := Heal{Directive: HealDirective(b[0]), Seq: binary.LittleEndian.Uint32(b[1:])}
	if !h.Directive.Valid() {
		return Heal{}, fmt.Errorf("%w: unknown directive %d", ErrBadHeal, b[0])
	}
	return h, nil
}

// attestStream drives the prover side of one streaming gateway session:
// HELO, adopt DICT, answer the challenge while wrapping every partial
// report in a SLICE frame (running tag included), acknowledge HEAL
// directives as they land mid-run, and return the gateway's verdict.
//
// conn must support one concurrent reader alongside one writer
// (net.Conn and net.Pipe both do): HEAL directives and an early-cut
// verdict arrive while the attested run is still streaming slices.
func (p *ProverEndpoint) attestStream(conn io.ReadWriter, app, device string, onHeal func(Heal)) (GatewayVerdict, error) {
	var gv GatewayVerdict
	if err := WriteFrame(conn, FrameHello, EncodeHelloID(app, device)); err != nil {
		return gv, fmt.Errorf("remote: announcing app: %w", err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return gv, fmt.Errorf("remote: reading challenge: %w", mapTruncation(err))
	}
	var dict *speccfa.Dictionary
	if typ == FrameDict {
		dict, err = speccfa.DecodeDictionary(payload)
		if err != nil {
			return gv, fmt.Errorf("remote: decoding session dictionary: %w", err)
		}
		typ, payload, err = ReadFrame(conn)
		if err != nil {
			return gv, fmt.Errorf("remote: reading challenge: %w", mapTruncation(err))
		}
	}
	switch typ {
	case FrameChal:
	case FrameBusy:
		ra, _ := ParseBusy(payload)
		return gv, &BusyError{RetryAfter: ra}
	case FrameFail:
		return gv, &PeerFailError{Context: "verifier rejected session", Msg: string(payload)}
	default:
		return gv, fmt.Errorf("remote: expected challenge frame, got type %d", typ)
	}
	chal, err := attest.DecodeChallenge(payload)
	if err != nil {
		return gv, err
	}
	factory, ok := p.factory(chal.App)
	if !ok {
		_ = WriteFrame(conn, FrameFail, []byte(fmt.Sprintf("unknown application %q", chal.App)))
		return gv, fmt.Errorf("remote: unknown application %q", chal.App)
	}
	prover, err := factory()
	if err != nil {
		_ = WriteFrame(conn, FrameFail, []byte("prover construction failed"))
		return gv, err
	}
	if dict != nil {
		if err := prover.Engine.SetSpeculation(dict); err != nil {
			_ = WriteFrame(conn, FrameFail, []byte("dictionary provisioning failed"))
			return gv, fmt.Errorf("remote: provisioning dictionary: %w", err)
		}
	}

	// The writer mutex serializes slice frames (attested-run goroutine)
	// with HEALACK frames (reader goroutine).
	var wmu sync.Mutex
	var sendErr error
	tag := SliceTagInit(chal.Nonce)
	var seq, mark uint32
	prover.Engine.OnReport = func(r *attest.Report) {
		tag = SliceTagNext(tag, r.Auth)
		mark += uint32(len(r.CFLog))
		sl := Slice{Seq: seq, Mark: mark, Final: r.Final, Tag: tag, Report: r.Encode()}
		seq++
		wmu.Lock()
		if sendErr == nil {
			sendErr = WriteFrame(conn, FrameSlice, EncodeSlice(sl))
		}
		wmu.Unlock()
	}

	// Reader: acknowledge HEAL directives mid-run, terminate on the
	// verdict (which an early-cutting gateway may deliver while the run
	// is still executing).
	type outcome struct {
		gv  GatewayVerdict
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		for {
			typ, payload, err := ReadFrame(conn)
			if err != nil {
				done <- outcome{err: fmt.Errorf("remote: reading verdict: %w", mapTruncation(err))}
				return
			}
			switch typ {
			case FrameHeal:
				h, herr := DecodeHeal(payload)
				if herr != nil {
					done <- outcome{err: herr}
					return
				}
				if onHeal != nil {
					onHeal(h)
				}
				wmu.Lock()
				aerr := WriteFrame(conn, FrameHealAck, EncodeHealAck(h))
				wmu.Unlock()
				if aerr != nil {
					done <- outcome{err: fmt.Errorf("remote: acknowledging heal: %w", aerr)}
					return
				}
			case FrameVerdict:
				v, verr := DecodeVerdict(payload)
				done <- outcome{gv: v, err: verr}
				return
			case FrameFail:
				done <- outcome{err: &PeerFailError{Context: "gateway reported failure", Msg: string(payload)}}
				return
			default:
				done <- outcome{err: fmt.Errorf("remote: unexpected frame type %d awaiting verdict", typ)}
				return
			}
		}
	}()

	runErr := func() error {
		if _, _, err := prover.Attest(chal); err != nil {
			wmu.Lock()
			_ = WriteFrame(conn, FrameFail, []byte(err.Error()))
			wmu.Unlock()
			return fmt.Errorf("remote: attested run: %w", err)
		}
		return nil
	}()

	out := <-done
	if out.err == nil {
		// A delivered verdict settles the session even if a late slice
		// write raced the gateway's early cut.
		return out.gv, nil
	}
	if runErr != nil {
		return gv, runErr
	}
	wmu.Lock()
	se := sendErr
	wmu.Unlock()
	if se != nil {
		return gv, fmt.Errorf("remote: streaming slices: %w", se)
	}
	return gv, out.err
}
