package cpu

import (
	"errors"
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/trace"
	"raptrack/internal/tz"
)

// run assembles a single-function program, executes it to halt, and
// returns the CPU.
func run(t *testing.T, build func(f *asm.Function)) *CPU {
	t.Helper()
	c, err := tryRun(build, Config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func tryRun(build func(f *asm.Function), cfg Config) (*CPU, error) {
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	build(f)
	img, err := asm.Layout(p, mem.NSCodeBase)
	if err != nil {
		return nil, err
	}
	cfg.Image = img
	if cfg.Mem == nil {
		cfg.Mem = mem.New()
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	err = c.Run(1_000_000)
	return c, err
}

func TestALUOps(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 10)
		f.MOVi(isa.R1, 3)
		f.ADDr(isa.R2, isa.R0, isa.R1)  // 13
		f.SUBr(isa.R3, isa.R0, isa.R1)  // 7
		f.MUL(isa.R4, isa.R0, isa.R1)   // 30
		f.UDIV(isa.R5, isa.R0, isa.R1)  // 3
		f.ANDr(isa.R6, isa.R0, isa.R1)  // 2
		f.ORRr(isa.R7, isa.R0, isa.R1)  // 11
		f.EORr(isa.R8, isa.R0, isa.R1)  // 9
		f.LSLi(isa.R9, isa.R0, 4)       // 160
		f.LSRi(isa.R10, isa.R0, 1)      // 5
		f.RSBi(isa.R11, isa.R1, 100)    // 97
		f.BICr(isa.R12, isa.R0, isa.R1) // 10 &^ 3 = 8
		f.HLT()
	})
	want := map[isa.Reg]uint32{
		isa.R2: 13, isa.R3: 7, isa.R4: 30, isa.R5: 3, isa.R6: 2,
		isa.R7: 11, isa.R8: 9, isa.R9: 160, isa.R10: 5, isa.R11: 97, isa.R12: 8,
	}
	for r, w := range want {
		if c.R[r] != w {
			t.Errorf("%v = %d, want %d", r, c.R[r], w)
		}
	}
}

func TestDivideByZeroYieldsZero(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 7)
		f.MOVi(isa.R1, 0)
		f.UDIV(isa.R2, isa.R0, isa.R1)
		f.SDIV(isa.R3, isa.R0, isa.R1)
		f.HLT()
	})
	if c.R[isa.R2] != 0 || c.R[isa.R3] != 0 {
		t.Errorf("div by zero: %d, %d", c.R[isa.R2], c.R[isa.R3])
	}
}

func TestSDIVSigned(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 0)
		f.SUBi(isa.R0, isa.R0, 9) // -9
		f.MOVi(isa.R1, 2)
		f.SDIV(isa.R2, isa.R0, isa.R1) // -4 (truncating)
		f.HLT()
	})
	if int32(c.R[isa.R2]) != -4 {
		t.Errorf("sdiv = %d", int32(c.R[isa.R2]))
	}
}

func TestMOVWMOVTPair(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOV32(isa.R0, 0xdeadbeef)
		f.HLT()
	})
	if c.R[isa.R0] != 0xdeadbeef {
		t.Errorf("MOV32 = %#x", c.R[isa.R0])
	}
}

func TestConditionalBranches(t *testing.T) {
	// Count which conditions pass for CMP 5, 7.
	c := run(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 5)
		f.CMPi(isa.R0, 7)
		f.MOVi(isa.R1, 0)
		f.BLT("lt_ok")
		f.HLT()
		f.Label("lt_ok")
		f.ADDi(isa.R1, isa.R1, 1)
		f.CMPi(isa.R0, 5)
		f.BNE("bad")
		f.BEQ("eq_ok")
		f.Label("bad")
		f.BKPT()
		f.Label("eq_ok")
		f.ADDi(isa.R1, isa.R1, 1)
		f.CMPi(isa.R0, 3)
		f.BHI("hi_ok") // unsigned 5 > 3
		f.BKPT()
		f.Label("hi_ok")
		f.ADDi(isa.R1, isa.R1, 1)
		f.HLT()
	})
	if c.R[isa.R1] != 3 {
		t.Errorf("passed %d condition checks, want 3", c.R[isa.R1])
	}
}

func TestSignedUnsignedComparisons(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 0)
		f.SUBi(isa.R0, isa.R0, 1) // 0xffffffff = -1 signed, max unsigned
		f.MOVi(isa.R2, 0)
		f.CMPi(isa.R0, 1)
		f.BLT("signed_less") // -1 < 1 signed
		f.BKPT()
		f.Label("signed_less")
		f.MOVi(isa.R1, 1)
		f.CMPr(isa.R0, isa.R1)
		f.BHI("unsigned_greater") // 0xffffffff > 1 unsigned
		f.BKPT()
		f.Label("unsigned_greater")
		f.MOVi(isa.R2, 1)
		f.HLT()
	})
	if c.R[isa.R2] != 1 {
		t.Error("signed/unsigned comparison semantics wrong")
	}
}

func TestCallReturnAndStack(t *testing.T) {
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	f.PUSH(isa.LR)
	f.MOVi(isa.R0, 4)
	f.BL("double")
	f.POP(isa.PC)
	g := p.AddFunc(asm.NewFunction("double"))
	g.ADDr(isa.R0, isa.R0, isa.R0)
	g.RET()
	img, err := asm.Layout(p, mem.NSCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Image: img, Mem: mem.New()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.R[isa.R0] != 8 {
		t.Errorf("result = %d", c.R[isa.R0])
	}
	if c.R[isa.SP] != mem.NSStackTop {
		t.Errorf("stack unbalanced: SP = %#x", c.R[isa.SP])
	}
	if !c.Halted {
		t.Error("did not halt via sentinel return")
	}
}

func TestPushPopOrdering(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 1)
		f.MOVi(isa.R1, 2)
		f.MOVi(isa.R2, 3)
		f.PUSH(isa.R0, isa.R1, isa.R2)
		f.POP(isa.R4, isa.R5, isa.R6)
		f.HLT()
	})
	// Lowest register at lowest address: pop into R4,R5,R6 restores order.
	if c.R[isa.R4] != 1 || c.R[isa.R5] != 2 || c.R[isa.R6] != 3 {
		t.Errorf("pop order: %d %d %d", c.R[isa.R4], c.R[isa.R5], c.R[isa.R6])
	}
}

func TestLoadStoreWidths(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOV32(isa.R8, mem.NSDataBase)
		f.MOV32(isa.R0, 0x11223344)
		f.STRi(isa.R0, isa.R8, 0)
		f.LDRBi(isa.R1, isa.R8, 0) // 0x44
		f.LDRHi(isa.R2, isa.R8, 2) // 0x1122
		f.MOVi(isa.R3, 0xff)
		f.STRBi(isa.R3, isa.R8, 1)
		f.LDRi(isa.R4, isa.R8, 0) // 0x1122ff44
		f.MOV32(isa.R5, 0xabcd)
		f.STRHi(isa.R5, isa.R8, 4)
		f.LDRi(isa.R6, isa.R8, 4) // 0x0000abcd
		f.HLT()
	})
	if c.R[isa.R1] != 0x44 || c.R[isa.R2] != 0x1122 || c.R[isa.R4] != 0x1122ff44 || c.R[isa.R6] != 0xabcd {
		t.Errorf("loads: %#x %#x %#x %#x", c.R[isa.R1], c.R[isa.R2], c.R[isa.R4], c.R[isa.R6])
	}
}

func TestJumpTable(t *testing.T) {
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	f.LA(isa.R1, "table")
	f.MOVi(isa.R2, 1) // select case1
	f.LDRPC(isa.R1, isa.R2)
	f.Label("case0")
	f.MOVi(isa.R0, 100)
	f.HLT()
	f.Label("case1")
	f.MOVi(isa.R0, 200)
	f.HLT()
	p.AddData(&asm.DataSegment{Name: "table", Syms: []string{"main.case0", "main.case1"}})
	img, err := asm.Layout(p, mem.NSCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Image: img, Mem: mem.New()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.R[isa.R0] != 200 {
		t.Errorf("jump table selected %d", c.R[isa.R0])
	}
	if c.BranchTaken[isa.KindIndirectJump] != 1 {
		t.Error("table jump not counted as indirect")
	}
}

func TestBranchToNowhereFaults(t *testing.T) {
	_, err := tryRun(func(f *asm.Function) {
		f.MOV32(isa.R0, 0x0dead000)
		f.BX(isa.R0)
	}, Config{})
	var fault *Fault
	if !errors.As(err, &fault) || !errors.Is(err, ErrNoInstr) {
		t.Errorf("err = %v", err)
	}
}

func TestBKPTFaults(t *testing.T) {
	_, err := tryRun(func(f *asm.Function) { f.BKPT() }, Config{})
	if !errors.Is(err, ErrBreak) {
		t.Errorf("err = %v", err)
	}
}

func TestRunawayGuard(t *testing.T) {
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	f.Label("spin")
	f.B("spin")
	img, _ := asm.Layout(p, mem.NSCodeBase)
	c, _ := New(Config{Image: img, Mem: mem.New()})
	err := c.Run(1000)
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("err = %v", err)
	}
}

func TestSAUBlocksSecureAccess(t *testing.T) {
	sau := tz.NewSAU()
	sau.MarkSecure(mem.SDataBase, 0x1000)
	_, err := tryRun(func(f *asm.Function) {
		f.MOV32(isa.R0, mem.SDataBase)
		f.LDRi(isa.R1, isa.R0, 0)
		f.HLT()
	}, Config{SAU: sau})
	var sf *tz.SecurityFault
	if !errors.As(err, &sf) {
		t.Errorf("read of secure memory: %v", err)
	}

	_, err = tryRun(func(f *asm.Function) {
		f.MOV32(isa.R0, mem.SDataBase)
		f.MOVi(isa.R1, 1)
		f.STRi(isa.R1, isa.R0, 0)
		f.HLT()
	}, Config{SAU: sau})
	if !errors.As(err, &sf) || !sf.Write {
		t.Errorf("write of secure memory: %v", err)
	}
}

func TestNSMPUBlocksCodeWrite(t *testing.T) {
	mpu := tz.NewMPU()
	_ = mpu.AddRegion(tz.MPURegion{
		Range:    tz.Range{Base: mem.NSCodeBase, Limit: mem.NSCodeBase + 0x1000},
		ReadOnly: true, Name: "APP code",
	})
	mpu.Lock()
	_, err := tryRun(func(f *asm.Function) {
		f.MOV32(isa.R0, mem.NSCodeBase)
		f.MOVi(isa.R1, 0)
		f.STRi(isa.R1, isa.R0, 0) // self-modification attempt
		f.HLT()
	}, Config{NSMPU: mpu})
	var mf *tz.MemFault
	if !errors.As(err, &mf) {
		t.Errorf("code write: %v", err)
	}
}

func TestSECALLDispatch(t *testing.T) {
	gw := tz.NewGateway()
	gw.ContextSwitchCycles = 50
	gw.Register(9, func(imm int32, regs *[16]uint32) (uint64, error) {
		regs[0] = regs[0] * 2
		return 10, nil
	})
	c, err := tryRun(func(f *asm.Function) {
		f.MOVi(isa.R0, 21)
		f.SECALL(9)
		f.HLT()
	}, Config{Gateway: gw})
	if err != nil {
		t.Fatal(err)
	}
	if c.R[isa.R0] != 42 {
		t.Errorf("service result = %d", c.R[isa.R0])
	}
	// MOVi(1) + SECALL(60) + HLT(1).
	if c.Cycles != 62 {
		t.Errorf("cycles = %d, want 62", c.Cycles)
	}
}

func TestSECALLWithoutGatewayFaults(t *testing.T) {
	_, err := tryRun(func(f *asm.Function) { f.SECALL(1) }, Config{})
	var use *tz.UnknownServiceError
	if !errors.As(err, &use) {
		t.Errorf("err = %v", err)
	}
}

func TestCycleModel(t *testing.T) {
	c := run(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 1)               // 1
		f.ADDi(isa.R0, isa.R0, 1)       // 1
		f.MOV32(isa.R8, mem.NSDataBase) // 2 (MOVW+MOVT)
		f.STRi(isa.R0, isa.R8, 0)       // 2
		f.LDRi(isa.R1, isa.R8, 0)       // 2
		f.B("next")                     // 2 taken
		f.Label("next")
		f.CMPi(isa.R0, 0) // 1
		f.BEQ("never")    // 1 not taken
		f.HLT()           // 1
		f.Label("never")
		f.BKPT()
	})
	if c.Cycles != 13 {
		t.Errorf("cycles = %d, want 13", c.Cycles)
	}
}

func TestMTBSeesTakenBranches(t *testing.T) {
	m := mem.New()
	mtb := trace.NewMTB(m, mem.SDataBase, 4096)
	mtb.SetMaster(true)
	c, err := tryRun(func(f *asm.Function) {
		f.B("a") // taken: recorded
		f.Label("a")
		f.CMPi(isa.R0, 1)
		f.BEQ("b") // not taken (R0=0): not recorded
		f.HLT()
		f.Label("b")
		f.BKPT()
	}, Config{Mem: m, MTB: mtb})
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	if mtb.TotalPackets != 1 {
		t.Errorf("MTB packets = %d, want 1", mtb.TotalPackets)
	}
}

func TestBranchHookAndCounters(t *testing.T) {
	var hooks int
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	f.PUSH(isa.LR)
	f.BL("leaf")
	f.POP(isa.PC)
	g := p.AddFunc(asm.NewFunction("leaf"))
	g.RET()
	img, _ := asm.Layout(p, mem.NSCodeBase)
	c, _ := New(Config{Image: img, Mem: mem.New()})
	c.BranchHook = func(src, dst uint32, kind isa.BranchKind) { hooks++ }
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// BL, BX LR, POP PC (to sentinel).
	if hooks != 3 {
		t.Errorf("hook calls = %d, want 3", hooks)
	}
	if c.BranchTaken[isa.KindCall] != 1 || c.BranchTaken[isa.KindReturn] != 2 {
		t.Errorf("counters: %v", c.BranchTaken)
	}
	if c.TotalBranches() != 3 {
		t.Errorf("TotalBranches = %d", c.TotalBranches())
	}
}
