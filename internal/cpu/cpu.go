// Package cpu implements the simulated ARMv8-M-class processor core that
// executes Non-Secure application code: fetch/decode/execute over an
// asm.Image, a Cortex-M33-inspired cycle model, TrustZone access checks
// (SAU + NS-MPU), the SECALL secure-gateway path, and integration with the
// MTB/DWT trace units (DWT comparators are evaluated at fetch; the MTB
// observes every taken non-sequential transfer).
package cpu

import (
	"errors"
	"fmt"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/trace"
	"raptrack/internal/tz"
)

// Cycle model constants (approximating Cortex-M33 timings).
const (
	cycALU         = 1
	cycMul         = 1
	cycDiv         = 6
	cycMem         = 2
	cycBranchTaken = 2 // pipeline refill on any taken branch
	cycPopPC       = 3 // extra cost of a POP that loads PC
	cycHalt        = 1
)

// Fault wraps an execution failure with the PC it occurred at.
type Fault struct {
	PC  uint32
	Err error
}

func (f *Fault) Error() string { return fmt.Sprintf("cpu: fault at pc=%#08x: %v", f.PC, f.Err) }

// Unwrap exposes the underlying cause (tz.SecurityFault, tz.MemFault, ...).
func (f *Fault) Unwrap() error { return f.Err }

// Sentinel execution errors.
var (
	ErrNoInstr   = errors.New("no instruction at address (control flow left program code)")
	ErrBreak     = errors.New("breakpoint executed")
	ErrInvalidOp = errors.New("invalid opcode")
	ErrRunaway   = errors.New("step limit exceeded")
)

// Config assembles a CPU. Image and Mem are required; the rest are
// optional (nil disables the corresponding feature).
type Config struct {
	Image   *asm.Image
	Mem     *mem.Memory
	SAU     *tz.SAU     // Non-Secure/Secure attribution checks on data access
	NSMPU   *tz.MPU     // write protection for locked APP code
	Gateway *tz.Gateway // SECALL dispatch
	MTB     *trace.MTB
	DWT     *trace.DWT

	// StackTop overrides the initial SP (defaults to mem.NSStackTop).
	StackTop uint32
}

// CPU is the simulated core. Not safe for concurrent use.
type CPU struct {
	R          [16]uint32
	N, Z, C, V bool

	img     *asm.Image
	mem     *mem.Memory
	sau     *tz.SAU
	nsMPU   *tz.MPU
	gateway *tz.Gateway
	mtb     *trace.MTB
	dwt     *trace.DWT

	// Cycles is the consumed cycle count; Steps the retired instruction
	// count.
	Cycles uint64
	Steps  uint64
	Halted bool

	// BranchTaken counts taken non-sequential transfers by kind.
	BranchTaken [isa.KindHalt + 1]uint64

	// BranchHook, when non-nil, observes every taken transfer after the
	// trace units have seen it. Used by analysis tooling and tests.
	BranchHook func(src, dst uint32, kind isa.BranchKind)
}

// New builds a CPU, loads the image's data segments into memory, and
// points PC at the entry function.
func New(cfg Config) (*CPU, error) {
	if cfg.Image == nil || cfg.Mem == nil {
		return nil, errors.New("cpu: Config.Image and Config.Mem are required")
	}
	entry, err := cfg.Image.EntryAddr()
	if err != nil {
		return nil, err
	}
	c := &CPU{
		img:     cfg.Image,
		mem:     cfg.Mem,
		sau:     cfg.SAU,
		nsMPU:   cfg.NSMPU,
		gateway: cfg.Gateway,
		mtb:     cfg.MTB,
		dwt:     cfg.DWT,
	}
	if len(cfg.Image.DataBytes) > 0 {
		cfg.Mem.LoadBytes(cfg.Image.DataBase, cfg.Image.DataBytes)
	}
	sp := cfg.StackTop
	if sp == 0 {
		sp = mem.NSStackTop
	}
	c.R[isa.SP] = sp
	c.R[isa.PC] = entry
	c.R[isa.LR] = retToHalt
	return c, nil
}

// retToHalt is the sentinel initial LR: returning from the entry function
// halts the CPU (mirrors EXC_RETURN-style magic values).
const retToHalt = 0xffff_fffe

// Image returns the image the CPU executes.
func (c *CPU) Image() *asm.Image { return c.img }

// Memory returns the CPU's memory system.
func (c *CPU) Memory() *mem.Memory { return c.mem }

func (c *CPU) fault(pc uint32, err error) error { return &Fault{PC: pc, Err: err} }

// checkRead validates a data read at addr.
func (c *CPU) checkRead(addr uint32) error {
	if c.sau != nil && c.sau.WorldOf(addr) == tz.Secure {
		return &tz.SecurityFault{Addr: addr}
	}
	return nil
}

// checkWrite validates a data write at addr.
func (c *CPU) checkWrite(addr uint32) error {
	if c.sau != nil && c.sau.WorldOf(addr) == tz.Secure {
		return &tz.SecurityFault{Addr: addr, Write: true}
	}
	if c.nsMPU != nil {
		if err := c.nsMPU.CheckWrite(addr); err != nil {
			return err
		}
	}
	return nil
}

func (c *CPU) read32(addr uint32) (uint32, error) {
	if err := c.checkRead(addr); err != nil {
		return 0, err
	}
	return c.mem.Read32(addr)
}

func (c *CPU) read16(addr uint32) (uint16, error) {
	if err := c.checkRead(addr); err != nil {
		return 0, err
	}
	return c.mem.Read16(addr)
}

func (c *CPU) read8(addr uint32) (byte, error) {
	if err := c.checkRead(addr); err != nil {
		return 0, err
	}
	return c.mem.Read8(addr)
}

func (c *CPU) write32(addr, v uint32) error {
	if err := c.checkWrite(addr); err != nil {
		return err
	}
	return c.mem.Write32(addr, v)
}

func (c *CPU) write16(addr uint32, v uint16) error {
	if err := c.checkWrite(addr); err != nil {
		return err
	}
	return c.mem.Write16(addr, v)
}

func (c *CPU) write8(addr uint32, v byte) error {
	if err := c.checkWrite(addr); err != nil {
		return err
	}
	return c.mem.Write8(addr, v)
}

// condPasses evaluates a condition code against the flags.
func (c *CPU) condPasses(cc isa.Cond) bool {
	switch cc {
	case isa.EQ:
		return c.Z
	case isa.NE:
		return !c.Z
	case isa.CS:
		return c.C
	case isa.CC:
		return !c.C
	case isa.MI:
		return c.N
	case isa.PL:
		return !c.N
	case isa.VS:
		return c.V
	case isa.VC:
		return !c.V
	case isa.HI:
		return c.C && !c.Z
	case isa.LS:
		return !c.C || c.Z
	case isa.GE:
		return c.N == c.V
	case isa.LT:
		return c.N != c.V
	case isa.GT:
		return !c.Z && c.N == c.V
	case isa.LE:
		return c.Z || c.N != c.V
	case isa.AL:
		return true
	}
	return false
}

// setSubFlags sets NZCV for a-b (CMP semantics).
func (c *CPU) setSubFlags(a, b uint32) {
	r := a - b
	c.N = int32(r) < 0
	c.Z = r == 0
	c.C = a >= b
	c.V = (int32(a) < 0) != (int32(b) < 0) && (int32(r) < 0) != (int32(a) < 0)
}

// Step executes one instruction. It returns (halted, error).
func (c *CPU) Step() (bool, error) {
	if c.Halted {
		return true, nil
	}
	pc := c.R[isa.PC]

	// DWT comparators are evaluated at fetch: the MTB enable state used for
	// this instruction's own branch reflects the region the instruction
	// lives in. This yields the paper's asymmetry (§IV-B): branches INTO
	// MTBAR are not recorded, branches OUT of it are.
	if c.dwt != nil && c.mtb != nil {
		start, stop := c.dwt.Evaluate(pc)
		if stop {
			c.mtb.TStop()
		}
		if start {
			c.mtb.TStart()
		}
	}

	ins, ok := c.img.Code[pc]
	if !ok {
		return false, c.fault(pc, ErrNoInstr)
	}

	nextPC := pc + ins.Size()
	cost := uint64(cycALU)
	branched := false
	kind := isa.KindNone

	switch ins.Op {
	case isa.OpNOP:
	case isa.OpMOVr:
		c.R[ins.Rd] = c.R[ins.Rm]
	case isa.OpMOVi:
		c.R[ins.Rd] = uint32(ins.Imm)
	case isa.OpMOVW:
		c.R[ins.Rd] = uint32(ins.Imm) & 0xffff
	case isa.OpMOVT:
		c.R[ins.Rd] = c.R[ins.Rd]&0xffff | uint32(ins.Imm)<<16
	case isa.OpMVN:
		c.R[ins.Rd] = ^c.R[ins.Rm]
	case isa.OpADR:
		c.R[ins.Rd] = ins.Target
	case isa.OpADDi:
		c.R[ins.Rd] = c.R[ins.Rn] + uint32(ins.Imm)
	case isa.OpADDr:
		c.R[ins.Rd] = c.R[ins.Rn] + c.R[ins.Rm]
	case isa.OpSUBi:
		c.R[ins.Rd] = c.R[ins.Rn] - uint32(ins.Imm)
	case isa.OpSUBr:
		c.R[ins.Rd] = c.R[ins.Rn] - c.R[ins.Rm]
	case isa.OpRSBi:
		c.R[ins.Rd] = uint32(ins.Imm) - c.R[ins.Rn]
	case isa.OpMUL:
		c.R[ins.Rd] = c.R[ins.Rn] * c.R[ins.Rm]
		cost = cycMul
	case isa.OpUDIV:
		if c.R[ins.Rm] == 0 {
			c.R[ins.Rd] = 0 // ARM: divide by zero yields zero
		} else {
			c.R[ins.Rd] = c.R[ins.Rn] / c.R[ins.Rm]
		}
		cost = cycDiv
	case isa.OpSDIV:
		if c.R[ins.Rm] == 0 {
			c.R[ins.Rd] = 0
		} else {
			c.R[ins.Rd] = uint32(int32(c.R[ins.Rn]) / int32(c.R[ins.Rm]))
		}
		cost = cycDiv
	case isa.OpANDr:
		c.R[ins.Rd] = c.R[ins.Rn] & c.R[ins.Rm]
	case isa.OpORRr:
		c.R[ins.Rd] = c.R[ins.Rn] | c.R[ins.Rm]
	case isa.OpEORr:
		c.R[ins.Rd] = c.R[ins.Rn] ^ c.R[ins.Rm]
	case isa.OpBICr:
		c.R[ins.Rd] = c.R[ins.Rn] &^ c.R[ins.Rm]
	case isa.OpLSLi:
		c.R[ins.Rd] = shiftL(c.R[ins.Rn], uint32(ins.Imm))
	case isa.OpLSLr:
		c.R[ins.Rd] = shiftL(c.R[ins.Rn], c.R[ins.Rm]&0xff)
	case isa.OpLSRi:
		c.R[ins.Rd] = shiftR(c.R[ins.Rn], uint32(ins.Imm))
	case isa.OpLSRr:
		c.R[ins.Rd] = shiftR(c.R[ins.Rn], c.R[ins.Rm]&0xff)
	case isa.OpASRi:
		sh := uint32(ins.Imm)
		if sh > 31 {
			sh = 31
		}
		c.R[ins.Rd] = uint32(int32(c.R[ins.Rn]) >> sh)
	case isa.OpCMPi:
		c.setSubFlags(c.R[ins.Rn], uint32(ins.Imm))
	case isa.OpCMPr:
		c.setSubFlags(c.R[ins.Rn], c.R[ins.Rm])
	case isa.OpTST:
		r := c.R[ins.Rn] & c.R[ins.Rm]
		c.N = int32(r) < 0
		c.Z = r == 0

	case isa.OpLDRi, isa.OpLDRr:
		addr := c.R[ins.Rn]
		if ins.Op == isa.OpLDRi {
			addr += uint32(ins.Imm)
		} else {
			addr += c.R[ins.Rm]
		}
		v, err := c.read32(addr)
		if err != nil {
			return false, c.fault(pc, err)
		}
		c.R[ins.Rd] = v
		cost = cycMem
	case isa.OpLDRBi, isa.OpLDRBr:
		addr := c.R[ins.Rn]
		if ins.Op == isa.OpLDRBi {
			addr += uint32(ins.Imm)
		} else {
			addr += c.R[ins.Rm]
		}
		v, err := c.read8(addr)
		if err != nil {
			return false, c.fault(pc, err)
		}
		c.R[ins.Rd] = uint32(v)
		cost = cycMem
	case isa.OpLDRHi:
		v, err := c.read16(c.R[ins.Rn] + uint32(ins.Imm))
		if err != nil {
			return false, c.fault(pc, err)
		}
		c.R[ins.Rd] = uint32(v)
		cost = cycMem
	case isa.OpSTRi, isa.OpSTRr:
		addr := c.R[ins.Rn]
		if ins.Op == isa.OpSTRi {
			addr += uint32(ins.Imm)
		} else {
			addr += c.R[ins.Rm]
		}
		if err := c.write32(addr, c.R[ins.Rd]); err != nil {
			return false, c.fault(pc, err)
		}
		cost = cycMem
	case isa.OpSTRBi, isa.OpSTRBr:
		addr := c.R[ins.Rn]
		if ins.Op == isa.OpSTRBi {
			addr += uint32(ins.Imm)
		} else {
			addr += c.R[ins.Rm]
		}
		if err := c.write8(addr, byte(c.R[ins.Rd])); err != nil {
			return false, c.fault(pc, err)
		}
		cost = cycMem
	case isa.OpSTRHi:
		if err := c.write16(c.R[ins.Rn]+uint32(ins.Imm), uint16(c.R[ins.Rd])); err != nil {
			return false, c.fault(pc, err)
		}
		cost = cycMem

	case isa.OpPUSH:
		n := uint32(ins.List.Count())
		sp := c.R[isa.SP] - 4*n
		addr := sp
		for r := isa.R0; r <= isa.PC; r++ {
			if ins.List.Has(r) {
				if err := c.write32(addr, c.R[r]); err != nil {
					return false, c.fault(pc, err)
				}
				addr += 4
			}
		}
		c.R[isa.SP] = sp
		cost = uint64(1 + n)
	case isa.OpPOP:
		addr := c.R[isa.SP]
		var popPC uint32
		hasPC := false
		for r := isa.R0; r <= isa.PC; r++ {
			if ins.List.Has(r) {
				v, err := c.read32(addr)
				if err != nil {
					return false, c.fault(pc, err)
				}
				addr += 4
				if r == isa.PC {
					popPC = v &^ 1
					hasPC = true
				} else {
					c.R[r] = v
				}
			}
		}
		c.R[isa.SP] = addr
		cost = uint64(1 + ins.List.Count())
		if hasPC {
			nextPC = popPC
			branched = true
			kind = isa.KindReturn
			cost += cycPopPC
		}
	case isa.OpLDRPC:
		addr := c.R[ins.Rn] + c.R[ins.Rm]<<2
		v, err := c.read32(addr)
		if err != nil {
			return false, c.fault(pc, err)
		}
		nextPC = v &^ 1
		branched = true
		kind = isa.KindIndirectJump
		cost = cycMem + cycBranchTaken

	case isa.OpB:
		if c.condPasses(ins.Cond) {
			nextPC = ins.Target
			branched = true
			if ins.Cond == isa.AL {
				kind = isa.KindDirect
			} else {
				kind = isa.KindCond
			}
			cost = cycBranchTaken
		}
	case isa.OpBL:
		c.R[isa.LR] = pc + ins.Size()
		nextPC = ins.Target
		branched = true
		kind = isa.KindCall
		cost = cycBranchTaken
	case isa.OpBLX:
		c.R[isa.LR] = pc + ins.Size()
		nextPC = c.R[ins.Rm] &^ 1
		branched = true
		kind = isa.KindIndirectCall
		cost = cycBranchTaken
	case isa.OpBX:
		nextPC = c.R[ins.Rm] &^ 1
		branched = true
		if ins.Rm == isa.LR {
			kind = isa.KindReturn
		} else {
			kind = isa.KindIndirectJump
		}
		cost = cycBranchTaken

	case isa.OpSECALL:
		if c.gateway == nil {
			return false, c.fault(pc, &tz.UnknownServiceError{ID: ins.Imm})
		}
		extra, err := c.gateway.Call(ins.Imm, &c.R)
		if err != nil {
			return false, c.fault(pc, err)
		}
		cost = extra

	case isa.OpHLT:
		c.Halted = true
		c.Cycles += cycHalt
		c.Steps++
		if c.mtb != nil {
			c.mtb.OnRetire()
		}
		return true, nil
	case isa.OpBKPT:
		return false, c.fault(pc, ErrBreak)
	default:
		return false, c.fault(pc, ErrInvalidOp)
	}

	c.Cycles += cost
	c.Steps++
	if branched {
		c.BranchTaken[kind]++
		if c.mtb != nil {
			c.mtb.Record(pc, nextPC)
		}
		if c.BranchHook != nil {
			c.BranchHook(pc, nextPC, kind)
		}
	}
	if c.mtb != nil {
		c.mtb.OnRetire()
	}
	// Returning to the sentinel LR halts (clean exit from the entry
	// function). The transfer itself is still traced above, so stubbed
	// entry-function returns leave the packet the verifier expects.
	if branched && nextPC == retToHalt {
		c.Halted = true
		return true, nil
	}
	c.R[isa.PC] = nextPC
	return false, nil
}

func shiftL(v, sh uint32) uint32 {
	if sh > 31 {
		return 0
	}
	return v << sh
}

func shiftR(v, sh uint32) uint32 {
	if sh > 31 {
		return 0
	}
	return v >> sh
}

// Run executes until the CPU halts, faults, or maxSteps instructions
// retire (0 means a generous default).
func (c *CPU) Run(maxSteps uint64) error {
	if maxSteps == 0 {
		maxSteps = 200_000_000
	}
	for i := uint64(0); i < maxSteps; i++ {
		halted, err := c.Step()
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
	}
	return c.fault(c.R[isa.PC], ErrRunaway)
}

// TotalBranches returns the count of taken non-sequential transfers.
func (c *CPU) TotalBranches() uint64 {
	var n uint64
	for _, v := range c.BranchTaken {
		n += v
	}
	return n
}
