// Package mem provides the simulated physical memory system: a sparse paged
// 32-bit address space with memory-mapped device windows, plus the standard
// AN505-inspired memory map used throughout the repository.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Standard memory map (see DESIGN.md §4). The layout loosely follows the
// AN505 Cortex-M33 FPGA image used by the paper's prototype.
const (
	NSCodeBase  uint32 = 0x0020_0000 // Non-Secure application code
	NSDataBase  uint32 = 0x2820_0000 // Non-Secure RAM (data + stack)
	NSStackTop  uint32 = 0x2824_0000 // initial SP for applications
	SCodeBase   uint32 = 0x1000_0000 // Secure World code (CFA engine)
	SDataBase   uint32 = 0x3000_0000 // Secure RAM: CFLog / MTB SRAM target
	PeriphBase  uint32 = 0x4000_0000 // peripheral MMIO window
	PeriphLimit uint32 = 0x4100_0000
)

const pageShift = 12
const pageSize = 1 << pageShift

type page [pageSize]byte

// AccessKind distinguishes data accesses for fault reporting.
type AccessKind uint8

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Fault describes a memory access failure (unmapped device hole, MPU
// violation injected by upper layers, etc.).
type Fault struct {
	Addr uint32
	Kind AccessKind
	Why  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault at %#08x: %s", f.Kind, f.Addr, f.Why)
}

// Device is a memory-mapped peripheral. Offsets are relative to the mapped
// base. Devices are word-addressed; byte/halfword accesses to device space
// are widened by Memory.
type Device interface {
	// Read32 returns the value of the register at off.
	Read32(off uint32) uint32
	// Write32 stores v to the register at off.
	Write32(off uint32, v uint32)
}

type mapping struct {
	base, limit uint32 // inclusive base, exclusive limit
	dev         Device
}

// Memory is a sparse byte-addressable 32-bit physical memory with device
// windows. Plain RAM pages are allocated on first touch; reads of untouched
// RAM return zero. It is not safe for concurrent use.
type Memory struct {
	pages    map[uint32]*page
	mappings []mapping // sorted by base

	// Watch, when non-nil, observes every data access (after it succeeds).
	// Used by tests and by the MPU integration in internal/tz.
	Watch func(addr uint32, kind AccessKind, size int, value uint32)
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

// Map installs dev over [base, base+size). It panics if the window overlaps
// an existing device mapping; device topology is program-construction-time
// configuration, not runtime input.
func (m *Memory) Map(base, size uint32, dev Device) {
	limit := base + size
	for _, mp := range m.mappings {
		if base < mp.limit && mp.base < limit {
			panic(fmt.Sprintf("mem: device window [%#x,%#x) overlaps [%#x,%#x)",
				base, limit, mp.base, mp.limit))
		}
	}
	m.mappings = append(m.mappings, mapping{base, limit, dev})
	sort.Slice(m.mappings, func(i, j int) bool { return m.mappings[i].base < m.mappings[j].base })
}

func (m *Memory) device(addr uint32) (Device, uint32, bool) {
	i := sort.Search(len(m.mappings), func(i int) bool { return m.mappings[i].limit > addr })
	if i < len(m.mappings) && addr >= m.mappings[i].base {
		return m.mappings[i].dev, addr - m.mappings[i].base, true
	}
	return nil, 0, false
}

func (m *Memory) pageFor(addr uint32, alloc bool) *page {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

func (m *Memory) observe(addr uint32, kind AccessKind, size int, v uint32) {
	if m.Watch != nil {
		m.Watch(addr, kind, size, v)
	}
}

// inDeviceSpace reports whether addr falls in the peripheral window.
func inDeviceSpace(addr uint32) bool { return addr >= PeriphBase && addr < PeriphLimit }

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) (byte, error) {
	if dev, off, ok := m.device(addr); ok {
		v := dev.Read32(off &^ 3)
		b := byte(v >> (8 * (off & 3)))
		m.observe(addr, Read, 1, uint32(b))
		return b, nil
	}
	if inDeviceSpace(addr) {
		return 0, &Fault{addr, Read, "unmapped peripheral"}
	}
	var b byte
	if p := m.pageFor(addr, false); p != nil {
		b = p[addr&(pageSize-1)]
	}
	m.observe(addr, Read, 1, uint32(b))
	return b, nil
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v byte) error {
	if dev, off, ok := m.device(addr); ok {
		word := dev.Read32(off &^ 3)
		sh := 8 * (off & 3)
		word = word&^(0xff<<sh) | uint32(v)<<sh
		dev.Write32(off&^3, word)
		m.observe(addr, Write, 1, uint32(v))
		return nil
	}
	if inDeviceSpace(addr) {
		return &Fault{addr, Write, "unmapped peripheral"}
	}
	p := m.pageFor(addr, true)
	p[addr&(pageSize-1)] = v
	m.observe(addr, Write, 1, uint32(v))
	return nil
}

// Read16 reads a little-endian halfword.
func (m *Memory) Read16(addr uint32) (uint16, error) {
	if dev, off, ok := m.device(addr); ok {
		v := dev.Read32(off &^ 3)
		h := uint16(v >> (8 * (off & 2)))
		m.observe(addr, Read, 2, uint32(h))
		return h, nil
	}
	if inDeviceSpace(addr) {
		return 0, &Fault{addr, Read, "unmapped peripheral"}
	}
	lo, err := m.read8Raw(addr)
	if err != nil {
		return 0, err
	}
	hi, err := m.read8Raw(addr + 1)
	if err != nil {
		return 0, err
	}
	v := uint16(lo) | uint16(hi)<<8
	m.observe(addr, Read, 2, uint32(v))
	return v, nil
}

// Write16 writes a little-endian halfword.
func (m *Memory) Write16(addr uint32, v uint16) error {
	if dev, off, ok := m.device(addr); ok {
		word := dev.Read32(off &^ 3)
		sh := 8 * (off & 2)
		word = word&^(0xffff<<sh) | uint32(v)<<sh
		dev.Write32(off&^3, word)
		m.observe(addr, Write, 2, uint32(v))
		return nil
	}
	if inDeviceSpace(addr) {
		return &Fault{addr, Write, "unmapped peripheral"}
	}
	m.write8Raw(addr, byte(v))
	m.write8Raw(addr+1, byte(v>>8))
	m.observe(addr, Write, 2, uint32(v))
	return nil
}

// Read32 reads a little-endian word.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	if dev, off, ok := m.device(addr); ok {
		v := dev.Read32(off &^ 3)
		m.observe(addr, Read, 4, v)
		return v, nil
	}
	if inDeviceSpace(addr) {
		return 0, &Fault{addr, Read, "unmapped peripheral"}
	}
	// Fast path: whole word within one page.
	if addr&(pageSize-1) <= pageSize-4 {
		var v uint32
		if p := m.pageFor(addr, false); p != nil {
			v = binary.LittleEndian.Uint32(p[addr&(pageSize-1):])
		}
		m.observe(addr, Read, 4, v)
		return v, nil
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.read8Raw(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	m.observe(addr, Read, 4, v)
	return v, nil
}

// Write32 writes a little-endian word.
func (m *Memory) Write32(addr uint32, v uint32) error {
	if dev, off, ok := m.device(addr); ok {
		dev.Write32(off&^3, v)
		m.observe(addr, Write, 4, v)
		return nil
	}
	if inDeviceSpace(addr) {
		return &Fault{addr, Write, "unmapped peripheral"}
	}
	if addr&(pageSize-1) <= pageSize-4 {
		p := m.pageFor(addr, true)
		binary.LittleEndian.PutUint32(p[addr&(pageSize-1):], v)
		m.observe(addr, Write, 4, v)
		return nil
	}
	for i := uint32(0); i < 4; i++ {
		m.write8Raw(addr+i, byte(v>>(8*i)))
	}
	m.observe(addr, Write, 4, v)
	return nil
}

func (m *Memory) read8Raw(addr uint32) (byte, error) {
	if inDeviceSpace(addr) {
		return 0, &Fault{addr, Read, "unmapped peripheral"}
	}
	if p := m.pageFor(addr, false); p != nil {
		return p[addr&(pageSize-1)], nil
	}
	return 0, nil
}

func (m *Memory) write8Raw(addr uint32, v byte) {
	p := m.pageFor(addr, true)
	p[addr&(pageSize-1)] = v
}

// LoadBytes copies b into memory starting at addr, bypassing device windows
// (used by program loading and test setup).
func (m *Memory) LoadBytes(addr uint32, b []byte) {
	for i, v := range b {
		m.write8Raw(addr+uint32(i), v)
	}
}

// ReadBytes copies size bytes starting at addr into a fresh slice,
// bypassing device windows.
func (m *Memory) ReadBytes(addr, size uint32) []byte {
	out := make([]byte, size)
	for i := range out {
		if p := m.pageFor(addr+uint32(i), false); p != nil {
			out[i] = p[(addr+uint32(i))&(pageSize-1)]
		}
	}
	return out
}

// PagesTouched returns the number of RAM pages allocated so far (test and
// footprint-accounting aid).
func (m *Memory) PagesTouched() int { return len(m.pages) }
