package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	if err := m.Write32(0x1000, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(0x1000); v != 0xdeadbeef {
		t.Errorf("Read32 = %#x", v)
	}
	if v, _ := m.Read16(0x1000); v != 0xbeef {
		t.Errorf("Read16 lo = %#x", v)
	}
	if v, _ := m.Read16(0x1002); v != 0xdead {
		t.Errorf("Read16 hi = %#x", v)
	}
	if v, _ := m.Read8(0x1003); v != 0xde {
		t.Errorf("Read8 = %#x", v)
	}
	if err := m.Write8(0x1001, 0x42); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(0x1000); v != 0xdead42ef {
		t.Errorf("after Write8: %#x", v)
	}
	if err := m.Write16(0x1002, 0x1234); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(0x1000); v != 0x123442ef {
		t.Errorf("after Write16: %#x", v)
	}
}

func TestZeroFill(t *testing.T) {
	m := New()
	if v, _ := m.Read32(0x9999_0000); v != 0 {
		t.Errorf("untouched RAM should read 0, got %#x", v)
	}
	if m.PagesTouched() != 0 {
		t.Errorf("reads must not allocate pages, got %d", m.PagesTouched())
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	// A word straddling a 4 KB page boundary.
	addr := uint32(0x1ffe)
	if err := m.Write32(addr, 0xa1b2c3d4); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(addr); v != 0xa1b2c3d4 {
		t.Errorf("cross-page Read32 = %#x", v)
	}
	if v, _ := m.Read8(0x1fff); v != 0xc3 {
		t.Errorf("byte at boundary = %#x", v)
	}
}

func TestLoadReadBytes(t *testing.T) {
	m := New()
	data := []byte{1, 2, 3, 4, 5, 6, 7}
	m.LoadBytes(0x2000, data)
	got := m.ReadBytes(0x2000, 7)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], data[i])
		}
	}
}

// stubDev is a 4-register device recording accesses.
type stubDev struct {
	regs   [4]uint32
	reads  int
	writes int
}

func (d *stubDev) Read32(off uint32) uint32 {
	d.reads++
	return d.regs[off/4%4]
}

func (d *stubDev) Write32(off uint32, v uint32) {
	d.writes++
	d.regs[off/4%4] = v
}

func TestDeviceMapping(t *testing.T) {
	m := New()
	d := &stubDev{}
	m.Map(PeriphBase, 0x100, d)
	if err := m.Write32(PeriphBase+4, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(PeriphBase + 4); v != 77 {
		t.Errorf("device reg = %d", v)
	}
	if d.writes == 0 || d.reads == 0 {
		t.Error("device not exercised")
	}
	// Sub-word access widening.
	if b, _ := m.Read8(PeriphBase + 4); b != 77 {
		t.Errorf("device byte = %d", b)
	}
	if err := m.Write8(PeriphBase+5, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(PeriphBase + 4); v != 77|1<<8 {
		t.Errorf("device after byte write = %#x", v)
	}
}

func TestUnmappedPeripheralFaults(t *testing.T) {
	m := New()
	var f *Fault
	if _, err := m.Read32(PeriphBase + 0x5000); !errors.As(err, &f) {
		t.Errorf("expected Fault, got %v", err)
	}
	if err := m.Write32(PeriphBase+0x5000, 1); !errors.As(err, &f) {
		t.Errorf("expected Fault, got %v", err)
	} else if f.Kind != Write {
		t.Errorf("fault kind = %v", f.Kind)
	}
}

func TestOverlappingDevicePanics(t *testing.T) {
	m := New()
	m.Map(PeriphBase, 0x100, &stubDev{})
	defer func() {
		if recover() == nil {
			t.Error("overlapping Map should panic")
		}
	}()
	m.Map(PeriphBase+0x80, 0x100, &stubDev{})
}

func TestWatchObserver(t *testing.T) {
	m := New()
	var events int
	m.Watch = func(addr uint32, kind AccessKind, size int, value uint32) { events++ }
	_ = m.Write32(0x100, 1)
	_, _ = m.Read32(0x100)
	_ = m.Write8(0x104, 2)
	if events != 3 {
		t.Errorf("watch events = %d, want 3", events)
	}
}

func TestReadWriteProperty(t *testing.T) {
	m := New()
	f := func(addr uint32, v uint32) bool {
		addr &= 0x3fff_fffc // stay out of the peripheral window, aligned
		if err := m.Write32(addr, v); err != nil {
			return false
		}
		got, err := m.Read32(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLittleEndianProperty(t *testing.T) {
	m := New()
	f := func(addr uint32, v uint32) bool {
		addr &= 0x3fff_fff0
		if err := m.Write32(addr, v); err != nil {
			return false
		}
		b0, _ := m.Read8(addr)
		b1, _ := m.Read8(addr + 1)
		b2, _ := m.Read8(addr + 2)
		b3, _ := m.Read8(addr + 3)
		composed := uint32(b0) | uint32(b1)<<8 | uint32(b2)<<16 | uint32(b3)<<24
		return composed == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
