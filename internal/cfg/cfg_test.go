package cfg

import (
	"testing"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
)

func analyzeOne(t *testing.T, build func(f *asm.Function), opts Options) *FuncAnalysis {
	t.Helper()
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	build(f)
	a, err := Analyze(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a.Funcs["main"]
}

func defaultOpts() Options { return Options{LoopOpt: true, NestedLoopOpt: true} }

func TestClassifyBasics(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 1) // 0 none
		f.B("skip")       // 1 direct
		f.Label("skip")   //
		f.BLX(isa.R2)     // 2 icall
		f.BX(isa.R3)      // 3 ijump
		f.POP(isa.PC)     // 4 return
		f.CMPi(isa.R0, 0) // 5
		f.BEQ("skip")     // 6 backward cond -> loop-back
		f.HLT()           // 7
	}, defaultOpts())
	want := []Class{ClassNone, ClassDeterministic, ClassIndirectCall,
		ClassIndirectJump, ClassReturn, ClassNone, ClassCondLoopBack, ClassNone}
	for i, w := range want {
		if fa.Classes[i] != w {
			t.Errorf("instr %d: class %v, want %v", i, fa.Classes[i], w)
		}
	}
}

func TestLeafReturnPathSensitive(t *testing.T) {
	// A recursive shape: early-out BX LR is clean; the one after a BL is
	// monitored.
	fa := analyzeOne(t, func(f *asm.Function) {
		f.CMPi(isa.R0, 2) // 0
		f.BLT("base")     // 1
		f.PUSH(isa.R4, isa.LR)
		f.BL("main") // 3: self-call (dirty after)
		f.POP(isa.R4, isa.PC)
		f.Label("base")
		f.RET() // 5: clean path
	}, defaultOpts())
	if fa.Classes[5] != ClassDeterministic {
		t.Errorf("clean-path BX LR classified %v", fa.Classes[5])
	}
	if fa.Classes[4] != ClassReturn {
		t.Errorf("POP PC classified %v", fa.Classes[4])
	}
}

func TestLeafReturnDirtyAfterCall(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.BL("main") // dirties LR
		f.RET()      // 1: reached only after the call
	}, defaultOpts())
	if fa.Classes[1] != ClassReturn {
		t.Errorf("post-call BX LR classified %v, want monitored", fa.Classes[1])
	}
}

func TestForwardLoopShape(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.MOVi(isa.R0, 10) // 0
		f.Label("loop")
		f.CMPi(isa.R0, 0) // 1
		f.BEQ("done")     // 2: forward exit
		f.SUBi(isa.R0, isa.R0, 1)
		f.B("loop") // 4: closing backward direct
		f.Label("done")
		f.HLT()
	}, defaultOpts())
	if fa.Classes[2] != ClassCondLoopFwd {
		t.Errorf("forward exit classified %v", fa.Classes[2])
	}
	if len(fa.Loops) != 1 {
		t.Fatalf("loops = %d", len(fa.Loops))
	}
	l := fa.Loops[0]
	if !l.Forward || l.Cond != 2 || l.Tail != 4 {
		t.Errorf("loop = %+v", l)
	}
	if !l.Simple {
		t.Error("forward counting loop should be simple")
	}
	if !l.Static || l.EntryValue != 10 {
		t.Errorf("loop should be static with entry 10, got %v/%d", l.Static, l.EntryValue)
	}
}

func TestBackwardLoopSimpleAndStatic(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.MOVi(isa.R3, 0) // 0 init
		f.Label("loop")
		f.ADDr(isa.R5, isa.R5, isa.R3) // 1 body
		f.ADDi(isa.R3, isa.R3, 1)      // 2 update
		f.CMPi(isa.R3, 10)             // 3
		f.BLT("loop")                  // 4
		f.HLT()
	}, defaultOpts())
	l := fa.Loops[0]
	if !l.Simple || l.CounterReg != isa.R3 || l.Step != 1 || l.Bound != 10 || l.BCond != isa.LT {
		t.Fatalf("loop = %+v", l)
	}
	if !l.Static || l.EntryValue != 0 {
		t.Errorf("static=%v entry=%d", l.Static, l.EntryValue)
	}
	trips, err := l.TripCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if trips != 9 { // 10 iterations, 9 back-edge takes
		t.Errorf("trips = %d, want 9", trips)
	}
}

func TestVariableLoopNotStatic(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.MUL(isa.R3, isa.R0, isa.R1) // runtime value
		f.Label("loop")
		f.SUBi(isa.R3, isa.R3, 1)
		f.CMPi(isa.R3, 0)
		f.BNE("loop")
		f.HLT()
	}, defaultOpts())
	l := fa.Loops[0]
	if !l.Simple {
		t.Fatal("should be simple")
	}
	if l.Static {
		t.Error("runtime-initialized loop must not be static")
	}
}

func TestLoopWithCallNotSimple(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.MOVi(isa.R3, 0)
		f.Label("loop")
		f.BL("main") // call in body
		f.ADDi(isa.R3, isa.R3, 1)
		f.CMPi(isa.R3, 10)
		f.BLT("loop")
		f.HLT()
	}, defaultOpts())
	if fa.Loops[0].Simple {
		t.Error("loop with a call must not be simple")
	}
}

func TestLoopWithCondNotSimple(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.MOVi(isa.R3, 0)
		f.Label("loop")
		f.CMPr(isa.R1, isa.R2)
		f.BEQ("skip")
		f.MOVi(isa.R2, 1)
		f.Label("skip")
		f.ADDi(isa.R3, isa.R3, 1)
		f.CMPi(isa.R3, 10)
		f.BLT("loop")
		f.HLT()
	}, defaultOpts())
	if fa.Loops[0].Simple {
		t.Error("loop with an inner conditional must not be simple")
	}
}

func TestNestedLoopOptGating(t *testing.T) {
	build := func(f *asm.Function) {
		f.MOVi(isa.R4, 0) // i
		f.Label("outer")
		f.MOVi(isa.R5, 0) // j
		f.Label("inner")
		f.ADDi(isa.R5, isa.R5, 1)
		f.CMPi(isa.R5, 4)
		f.BLT("inner")
		f.ADDi(isa.R4, isa.R4, 1)
		f.CMPi(isa.R4, 3)
		f.BLT("outer")
		f.HLT()
	}
	nested := analyzeOne(t, build, Options{LoopOpt: true, NestedLoopOpt: true})
	simpleCount := 0
	for _, l := range nested.Loops {
		if l.Simple {
			simpleCount++
		}
	}
	if simpleCount != 2 {
		t.Errorf("nested opt: %d simple loops, want 2", simpleCount)
	}
	inner := analyzeOne(t, build, Options{LoopOpt: true, NestedLoopOpt: false})
	simpleCount = 0
	for _, l := range inner.Loops {
		if l.Simple {
			simpleCount++
		}
	}
	if simpleCount != 1 {
		t.Errorf("innermost-only: %d simple loops, want 1", simpleCount)
	}
}

func TestMultipleCounterUpdatesNotSimple(t *testing.T) {
	fa := analyzeOne(t, func(f *asm.Function) {
		f.MOVi(isa.R3, 0)
		f.Label("loop")
		f.ADDi(isa.R3, isa.R3, 1)
		f.ADDi(isa.R3, isa.R3, 1) // second update
		f.CMPi(isa.R3, 10)
		f.BLT("loop")
		f.HLT()
	}, defaultOpts())
	if fa.Loops[0].Simple {
		t.Error("two updates must disqualify")
	}
}

func TestTripCountForwardSemantics(t *testing.T) {
	l := &Loop{Simple: true, Forward: true, Step: -1, Bound: 0, BCond: isa.EQ}
	// while (r != 0) { r-- }: exit when r == 0; continues r times.
	for _, v := range []uint32{0, 1, 5, 100} {
		n, err := l.TripCount(v)
		if err != nil {
			t.Fatal(err)
		}
		if n != uint64(v) {
			t.Errorf("TripCount(%d) = %d", v, n)
		}
	}
}

func TestTripCountBackwardSemantics(t *testing.T) {
	l := &Loop{Simple: true, Step: 1, Bound: 8, BCond: isa.LT}
	// do { r++ } while (r < 8): from 0, back edge taken 7 times.
	n, err := l.TripCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("TripCount(0) = %d, want 7", n)
	}
	// From 8, the first test already fails: 0 takes.
	n, _ = l.TripCount(8)
	if n != 0 {
		t.Errorf("TripCount(8) = %d, want 0", n)
	}
}

func TestTripCountDivergenceCapped(t *testing.T) {
	l := &Loop{Simple: true, Step: 0, Bound: 8, BCond: isa.LT}
	l.Step = 1
	l.BCond = isa.NE
	l.Bound = -1 // never equal upward from 0 until wraparound: huge
	if _, err := l.TripCount(0); err == nil {
		t.Error("divergent trip count should be capped")
	}
}

func TestCrossFunctionReferenceClearsStatic(t *testing.T) {
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	f.MOVi(isa.R3, 0)
	f.Label("loop")
	f.ADDi(isa.R3, isa.R3, 1)
	f.CMPi(isa.R3, 10)
	f.BLT("loop")
	f.HLT()
	g := p.AddFunc(asm.NewFunction("other"))
	g.B("main.loop") // cross-function entry into the loop
	a, err := Analyze(p, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range a.Funcs["main"].Loops {
		if l.Static {
			t.Error("externally-referenced function must not keep static loops")
		}
	}
}

func TestCountAggregation(t *testing.T) {
	p := asm.NewProgram("t")
	f := p.NewFunc("main")
	f.BLX(isa.R1)
	f.BX(isa.R2)
	f.POP(isa.PC)
	f.CMPi(isa.R0, 0)
	f.BEQ("end")
	f.Label("end")
	f.HLT()
	a, err := Analyze(p, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := a.Count()
	if c.IndirectCall != 1 || c.IndirectJump != 1 || c.Return != 1 || c.CondNonLoop != 1 {
		t.Errorf("counts = %+v", c)
	}
}
