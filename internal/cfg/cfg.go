// Package cfg implements the static analysis behind RAP-Track's offline
// phase (paper §IV-B/§IV-C/§IV-D): it classifies every branch of a program
// as deterministic or non-deterministic, detects loops (backward- and
// forward-conditional forms), and qualifies "simple" loops for the
// loop-condition optimization.
//
// The analysis operates on the pre-layout asm.Program, at instruction-index
// granularity within each function, which is the representation the linker
// rewrites.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"raptrack/internal/asm"
	"raptrack/internal/isa"
)

// Class is the RAP-Track classification of an instruction's control-flow
// role, which determines the trampoline (if any) the linker applies.
type Class uint8

// Classification values.
const (
	ClassNone          Class = iota // not a control transfer
	ClassDeterministic              // fixed behaviour: direct B/BL, leaf BX LR
	ClassIndirectCall               // BLX Rm           -> Fig. 3 trampoline
	ClassIndirectJump               // BX Rm / LDR pc   -> Fig. 4 trampoline
	ClassReturn                     // POP{..,pc}, non-leaf BX LR -> Fig. 4
	ClassCondNonLoop                // if/else          -> Fig. 5 (log taken)
	ClassCondLoopBack               // backward loop Bcc-> Fig. 6 (log taken)
	ClassCondLoopFwd                // forward loop exit-> Fig. 7 (log not-taken)
)

func (c Class) String() string {
	names := [...]string{"none", "deterministic", "icall", "ijump", "return",
		"cond", "loop-back", "loop-fwd"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// NonDeterministic reports whether the class requires runtime evidence.
func (c Class) NonDeterministic() bool { return c >= ClassIndirectCall }

// Loop describes one natural loop discovered in a function.
type Loop struct {
	// Head and Tail delimit the body [Head, Tail] (instruction indices,
	// inclusive). Tail is the backward branch closing the loop.
	Head, Tail int
	// Cond is the index of the conditional branch controlling iteration:
	// equal to Tail for backward-conditional loops, or a forward branch
	// near the head for forward-exit loops. -1 if the loop has no single
	// conditional controller (e.g. a while(true) with breaks).
	Cond int
	// Forward is true for the Fig. 7 shape: the conditional exit jumps
	// forward, iteration continues via fallthrough + closing direct B.
	Forward bool

	// Simple-loop optimization fields (§IV-D), valid when Simple is true.
	Simple     bool
	Cmp        int     // index of the CMP Rn,#imm feeding Cond
	CounterReg isa.Reg // loop counter register
	Step       int32   // signed per-iteration counter delta
	Bound      int32   // CMP immediate
	BCond      isa.Cond

	// Static marks a simple loop whose counter is initialized to a
	// constant that provably reaches the loop head: its iteration count
	// is fully static, so it needs no instrumentation at all (§IV-C:
	// "simple loops with fixed iteration counts ... need not be logged").
	// EntryValue is the constant.
	Static     bool
	EntryValue int32
}

// Contains reports whether instruction index i is in the loop body.
func (l *Loop) Contains(i int) bool { return i >= l.Head && i <= l.Tail }

// Span returns the body length in instructions.
func (l *Loop) Span() int { return l.Tail - l.Head + 1 }

// TripCount computes how many times the loop's conditional branch takes
// the "continue" direction, given the counter's value at loop entry.
//
// Backward (do-while) loops update the counter in the body and then test:
// the continue direction is branch-taken, and the first test sees
// entry+Step. Forward (while) loops test at the top before any update: the
// continue direction is branch-NOT-taken, and the first test sees entry.
// The count is capped to bound verifier work on malformed evidence.
func (l *Loop) TripCount(entry uint32) (uint64, error) {
	if !l.Simple {
		return 0, fmt.Errorf("cfg: TripCount on non-simple loop")
	}
	const maxTrips = 1 << 24
	v := entry
	var n uint64
	for {
		if l.Forward {
			if condHolds(l.BCond, v, uint32(l.Bound)) {
				return n, nil // exit branch taken
			}
			n++
			v += uint32(l.Step)
		} else {
			v += uint32(l.Step)
			if !condHolds(l.BCond, v, uint32(l.Bound)) {
				return n, nil // back edge falls through
			}
			n++
		}
		if n > maxTrips {
			return 0, fmt.Errorf("cfg: loop trip count exceeds %d (entry=%d step=%d bound=%d)",
				maxTrips, int32(entry), l.Step, l.Bound)
		}
	}
}

// condHolds evaluates condition cc for CMP a, b semantics.
func condHolds(cc isa.Cond, a, b uint32) bool {
	r := a - b
	n := int32(r) < 0
	z := r == 0
	cf := a >= b
	v := (int32(a) < 0) != (int32(b) < 0) && (int32(r) < 0) != (int32(a) < 0)
	switch cc {
	case isa.EQ:
		return z
	case isa.NE:
		return !z
	case isa.CS:
		return cf
	case isa.CC:
		return !cf
	case isa.MI:
		return n
	case isa.PL:
		return !n
	case isa.HI:
		return cf && !z
	case isa.LS:
		return !cf || z
	case isa.GE:
		return n == v
	case isa.LT:
		return n != v
	case isa.GT:
		return !z && n == v
	case isa.LE:
		return z || n != v
	case isa.AL:
		return true
	}
	return false
}

// FuncAnalysis is the per-function analysis result.
type FuncAnalysis struct {
	Fn *asm.Function
	// Classes holds one Class per instruction index.
	Classes []Class
	// Loops lists discovered loops, innermost (smallest span) first.
	Loops []*Loop
	// LeafReturn is true when BX LR in this function is deterministic:
	// nothing in the function disturbs LR (no calls, no LR push/write).
	LeafReturn bool
	// lrDirty[i] is true when some path from the function entry to
	// instruction i executes an instruction that modifies LR (BL/BLX or an
	// explicit write). A BX LR at a clean index is predictable (§IV-C2)
	// even in functions that call elsewhere — e.g. an early-out base case.
	lrDirty []bool
}

// LoopAt returns the innermost loop containing index i, or nil.
func (fa *FuncAnalysis) LoopAt(i int) *Loop {
	for _, l := range fa.Loops { // innermost first
		if l.Contains(i) {
			return l
		}
	}
	return nil
}

// Options tunes the analysis.
type Options struct {
	// LoopOpt enables the §IV-D simple-loop optimization analysis.
	LoopOpt bool
	// NestedLoopOpt lets an outer loop qualify as simple when its inner
	// conditional branches belong to already-optimized simple loops.
	// RAP-Track enables this; the TRACES baseline (innermost-only loop
	// optimization) does not.
	NestedLoopOpt bool
}

// Analysis is the whole-program result.
type Analysis struct {
	Prog  *asm.Program
	Funcs map[string]*FuncAnalysis
	Opts  Options
}

// Analyze classifies every branch in p.
func Analyze(p *asm.Program, opts Options) (*Analysis, error) {
	a := &Analysis{Prog: p, Funcs: make(map[string]*FuncAnalysis), Opts: opts}
	for _, fn := range p.Funcs {
		fa, err := analyzeFunc(fn, opts)
		if err != nil {
			return nil, err
		}
		a.Funcs[fn.Name] = fa
	}

	// Cross-function label references (qualified branch symbols or data
	// segments holding label addresses for table jumps) can transfer
	// control into the middle of a function, bypassing a static loop's
	// counter initialization. Be conservative: drop Static for every loop
	// in a function whose internals are referenced from outside.
	referenced := make(map[string]bool)
	noteRef := func(sym string) {
		if i := strings.IndexByte(sym, '.'); i > 0 {
			referenced[sym[:i]] = true
		}
	}
	for _, fn := range p.Funcs {
		for _, ins := range fn.Instrs {
			if ins.Sym != "" {
				noteRef(ins.Sym)
			}
		}
	}
	for _, d := range p.Data {
		for _, s := range d.Syms {
			noteRef(s)
		}
	}
	for name, fa := range a.Funcs {
		if !referenced[name] {
			continue
		}
		for _, l := range fa.Loops {
			l.Static = false
		}
	}
	return a, nil
}

// lrDirtyAnalysis computes, per instruction index, whether any path from
// the function entry reaching it has modified LR (forward reachability
// with a dirty bit; BL/BLX dirty their fallthrough successor).
func lrDirtyAnalysis(fn *asm.Function) []bool {
	n := len(fn.Instrs)
	cleanReach := make([]bool, n)
	dirtyReach := make([]bool, n)
	type state struct {
		idx   int
		dirty bool
	}
	stack := []state{{0, false}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.idx >= n {
			continue
		}
		if s.dirty {
			if dirtyReach[s.idx] {
				continue
			}
			dirtyReach[s.idx] = true
		} else {
			if cleanReach[s.idx] {
				continue
			}
			cleanReach[s.idx] = true
		}
		ins := fn.Instrs[s.idx]
		outDirty := s.dirty || ins.WritesReg(isa.LR)
		switch ins.Kind() {
		case isa.KindDirect:
			if t := localTarget(fn, ins.Sym); t >= 0 {
				stack = append(stack, state{t, outDirty})
			}
		case isa.KindCond:
			if t := localTarget(fn, ins.Sym); t >= 0 {
				stack = append(stack, state{t, outDirty})
			}
			stack = append(stack, state{s.idx + 1, outDirty})
		case isa.KindCall:
			// The callee returns to the fallthrough with LR clobbered.
			stack = append(stack, state{s.idx + 1, true})
		case isa.KindIndirectCall:
			stack = append(stack, state{s.idx + 1, true})
		case isa.KindReturn, isa.KindIndirectJump, isa.KindHalt:
			// No local successor.
		default:
			stack = append(stack, state{s.idx + 1, outDirty})
		}
	}
	return dirtyReach
}

// localTarget resolves a branch Sym to a local instruction index, or -1 if
// the symbol is not a local label (cross-function reference).
func localTarget(fn *asm.Function, sym string) int {
	if sym == "" {
		return -1
	}
	if idx, ok := fn.Labels()[sym]; ok {
		return idx
	}
	return -1
}

func analyzeFunc(fn *asm.Function, opts Options) (*FuncAnalysis, error) {
	fa := &FuncAnalysis{Fn: fn, Classes: make([]Class, len(fn.Instrs))}

	// Leaf-return rule (§IV-C2): a BX LR is predictable iff LR cannot have
	// been disturbed on any path reaching it. The analysis is
	// path-sensitive: a base-case early return in a recursive function is
	// still deterministic.
	fa.lrDirty = lrDirtyAnalysis(fn)
	fa.LeafReturn = true
	for _, ins := range fn.Instrs {
		if ins.WritesReg(isa.LR) {
			fa.LeafReturn = false
		}
	}

	// Loop discovery: every backward branch (conditional or not) closes a
	// loop [target, branch].
	for i, ins := range fn.Instrs {
		if ins.Op != isa.OpB {
			continue
		}
		t := localTarget(fn, ins.Sym)
		if t < 0 || t > i {
			continue
		}
		l := &Loop{Head: t, Tail: i, Cond: -1}
		if ins.Cond != isa.AL {
			l.Cond = i
		} else {
			// Forward-exit shape: find the conditional branch inside the
			// body that jumps past the tail (Fig. 7).
			for j := t; j < i; j++ {
				b := fn.Instrs[j]
				if b.Op == isa.OpB && b.Cond != isa.AL {
					bt := localTarget(fn, b.Sym)
					if bt > i {
						l.Cond = j
						l.Forward = true
						break
					}
				}
			}
		}
		fa.Loops = append(fa.Loops, l)
	}
	// Innermost first: sort by span, then by head for determinism.
	sort.Slice(fa.Loops, func(i, j int) bool {
		if fa.Loops[i].Span() != fa.Loops[j].Span() {
			return fa.Loops[i].Span() < fa.Loops[j].Span()
		}
		return fa.Loops[i].Head < fa.Loops[j].Head
	})

	// Classification.
	for i, ins := range fn.Instrs {
		switch ins.Kind() {
		case isa.KindNone, isa.KindSecureCall, isa.KindHalt:
			fa.Classes[i] = ClassNone
		case isa.KindDirect, isa.KindCall:
			fa.Classes[i] = ClassDeterministic
		case isa.KindIndirectCall:
			fa.Classes[i] = ClassIndirectCall
		case isa.KindIndirectJump:
			fa.Classes[i] = ClassIndirectJump
		case isa.KindReturn:
			if ins.Op == isa.OpBX && !fa.lrDirty[i] {
				fa.Classes[i] = ClassDeterministic
			} else {
				fa.Classes[i] = ClassReturn
			}
		case isa.KindCond:
			fa.Classes[i] = classifyCond(fn, fa, i)
		}
	}

	if opts.LoopOpt {
		qualifyLoops(fn, fa, opts)
	}
	return fa, nil
}

// classifyCond decides which Fig. 5/6/7 case a conditional branch is.
func classifyCond(fn *asm.Function, fa *FuncAnalysis, i int) Class {
	ins := fn.Instrs[i]
	t := localTarget(fn, ins.Sym)
	if t >= 0 && t <= i {
		return ClassCondLoopBack
	}
	// Forward conditional: a loop exit if it is the controlling exit of an
	// enclosing forward loop.
	for _, l := range fa.Loops {
		if l.Forward && l.Cond == i {
			return ClassCondLoopFwd
		}
	}
	return ClassCondNonLoop
}

// qualifyLoops marks loops that satisfy the §IV-D "simple loop" conditions:
// iteration controlled by CMP against a constant, a single constant-step
// register update, and a body free of other non-deterministic branches
// (modulo nested already-simple loops when NestedLoopOpt is set).
func qualifyLoops(fn *asm.Function, fa *FuncAnalysis, opts Options) {
	for _, l := range fa.Loops { // innermost first
		if l.Cond < 0 {
			continue
		}
		cond := fn.Instrs[l.Cond]
		if cond.Op != isa.OpB || cond.Cond == isa.AL {
			continue
		}
		// The CMP must immediately precede the conditional branch so the
		// tested register/bound are unambiguous.
		if l.Cond == 0 {
			continue
		}
		cmp := fn.Instrs[l.Cond-1]
		if cmp.Op != isa.OpCMPi {
			continue
		}
		ctr := cmp.Rn
		bound := cmp.Imm

		simple := true
		var step int32
		updates := 0
		updateIdx := -1
		for j := l.Head; j <= l.Tail && simple; j++ {
			if j == l.Cond || j == l.Cond-1 {
				continue
			}
			b := fn.Instrs[j]
			// Calls can clobber caller-saved registers (including the
			// counter) and execute arbitrary branches: never simple.
			if b.Op == isa.OpBL || b.Op == isa.OpBLX {
				simple = false
				continue
			}
			// Counter discipline: only ADD/SUB ctr, ctr, #imm may write it.
			if b.WritesReg(ctr) {
				switch {
				case b.Op == isa.OpADDi && b.Rd == ctr && b.Rn == ctr:
					step += b.Imm
					updates++
					updateIdx = j
				case b.Op == isa.OpSUBi && b.Rd == ctr && b.Rn == ctr:
					step -= b.Imm
					updates++
					updateIdx = j
				default:
					simple = false
				}
				continue
			}
			// Branch discipline: everything else in the body must be
			// deterministic, or belong to a nested simple loop. A second
			// back edge to this loop's own head (a "continue") would let
			// iterations skip the counter update, so it disqualifies.
			if b.Op == isa.OpB {
				if t := localTarget(fn, b.Sym); t == l.Head && j != l.Tail {
					simple = false
					continue
				}
			}
			cl := fa.Classes[j]
			if cl == ClassNone {
				continue
			}
			if cl == ClassDeterministic {
				// Backward direct branches close nested loops; they are
				// fine only when that nested loop is itself optimized.
				if b.Op == isa.OpB && b.Cond == isa.AL {
					if t := localTarget(fn, b.Sym); t >= 0 && t <= j && t > l.Head {
						if !opts.NestedLoopOpt || innerSimpleLoopAt(fa, j, l) == nil {
							simple = false
							continue
						}
					}
				}
				continue
			}
			if opts.NestedLoopOpt {
				if inner := innerSimpleLoopAt(fa, j, l); inner != nil {
					continue
				}
			}
			simple = false
		}
		if !simple || updates != 1 || step == 0 {
			continue
		}
		// The single update must execute exactly once per iteration: it may
		// not live inside a nested loop.
		nested := false
		for _, in := range fa.Loops {
			if in != l && in.Contains(updateIdx) && in.Head >= l.Head && in.Tail <= l.Tail {
				nested = true
				break
			}
		}
		if nested {
			continue
		}
		l.Simple = true
		l.Cmp = l.Cond - 1
		l.CounterReg = ctr
		l.Step = step
		l.Bound = bound
		l.BCond = cond.Cond
		detectStatic(fn, fa, l)
	}
}

// detectStatic upgrades a simple loop to fully static when a constant
// initialization of the counter provably reaches the loop head: the
// nearest preceding write to the counter is MOV ctr,#imm / MOVW ctr,#imm,
// nothing between it and the head is a branch or an externally-targeted
// label, and the head itself is only targeted by the loop's own back
// edges.
func detectStatic(fn *asm.Function, fa *FuncAnalysis, l *Loop) {
	// Indices targeted by branches, split by branch position.
	labelIdx := fn.Labels()
	targeted := func(idx int, allowBackFrom int) bool {
		for name, li := range labelIdx {
			if li != idx {
				continue
			}
			_ = name
			for j, b := range fn.Instrs {
				if b.Op != isa.OpB || localTarget(fn, b.Sym) != idx {
					continue
				}
				if j < allowBackFrom {
					return true // forward entry bypassing the init
				}
			}
		}
		return false
	}
	var init *isa.Instr
	j := l.Head - 1
	for ; j >= 0; j-- {
		ins := fn.Instrs[j]
		if ins.IsBranch() || ins.Op == isa.OpSECALL || ins.Op == isa.OpHLT {
			return // control-flow merge before finding the init
		}
		if ins.WritesReg(l.CounterReg) {
			if ins.Op == isa.OpMOVi || ins.Op == isa.OpMOVW {
				init = &fn.Instrs[j]
			}
			break
		}
	}
	if init == nil || j < 0 {
		return
	}
	// Labels strictly between the init and the head must not be branch
	// targets at all (any entry there — including an enclosing loop's back
	// edge — bypasses the init). The head itself may only be hit by this
	// loop's own back edges.
	for idx := j + 1; idx < l.Head; idx++ {
		if targetedAtAll(fn, idx) {
			return
		}
	}
	if targeted(l.Head, l.Head) {
		return
	}
	// An enclosing loop whose span straddles the init would re-enter the
	// head region without re-running the init.
	for _, outer := range fa.Loops {
		if outer != l && outer.Head > j && outer.Head <= l.Head && outer.Tail >= l.Tail {
			return
		}
	}
	l.Static = true
	l.EntryValue = init.Imm & 0xffff
	if init.Op == isa.OpMOVi {
		l.EntryValue = init.Imm
	}
}

// targetedAtAll reports whether any branch in fn targets instruction idx.
func targetedAtAll(fn *asm.Function, idx int) bool {
	hasLabel := false
	for _, li := range fn.Labels() {
		if li == idx {
			hasLabel = true
			break
		}
	}
	if !hasLabel {
		return false
	}
	for _, b := range fn.Instrs {
		if b.Op == isa.OpB && localTarget(fn, b.Sym) == idx {
			return true
		}
	}
	return false
}

// innerSimpleLoopAt returns a simple loop other than outer whose body
// contains j and which is strictly nested inside outer.
func innerSimpleLoopAt(fa *FuncAnalysis, j int, outer *Loop) *Loop {
	for _, l := range fa.Loops {
		if l == outer || !l.Simple {
			continue
		}
		if l.Contains(j) && l.Head >= outer.Head && l.Tail <= outer.Tail {
			return l
		}
	}
	return nil
}

// Counts tallies classifications across the program (reporting aid).
type Counts struct {
	Deterministic int
	IndirectCall  int
	IndirectJump  int
	Return        int
	CondNonLoop   int
	CondLoopBack  int
	CondLoopFwd   int
	SimpleLoops   int
}

// Count aggregates classification statistics.
func (a *Analysis) Count() Counts {
	var c Counts
	for _, fa := range a.Funcs {
		for _, cl := range fa.Classes {
			switch cl {
			case ClassDeterministic:
				c.Deterministic++
			case ClassIndirectCall:
				c.IndirectCall++
			case ClassIndirectJump:
				c.IndirectJump++
			case ClassReturn:
				c.Return++
			case ClassCondNonLoop:
				c.CondNonLoop++
			case ClassCondLoopBack:
				c.CondLoopBack++
			case ClassCondLoopFwd:
				c.CondLoopFwd++
			}
		}
		for _, l := range fa.Loops {
			if l.Simple {
				c.SimpleLoops++
			}
		}
	}
	return c
}
