package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStageStrings(t *testing.T) {
	want := []string{"accept", "helo", "dict_push", "collect", "expand", "verify", "verdict_write"}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() != want[s] {
			t.Errorf("stage %d = %q, want %q", s, s.String(), want[s])
		}
	}
	if Stage(200).String() != "invalid-stage" {
		t.Errorf("out-of-range stage = %q", Stage(200).String())
	}
}

func TestTraceLifecycle(t *testing.T) {
	o := NewObserver(nil, 4)
	tr := o.StartTrace("127.0.0.1:5")
	tr.SetApp("prime")
	tr.Record(StageHelo, time.Millisecond)
	tr.RecordAt(StageExpand, 2*time.Millisecond, time.Millisecond)
	tr.Finish("ok", "")
	o.Commit(tr)

	got := o.Recent("prime", 10)
	if len(got) != 1 || got[0].ID != tr.ID || len(got[0].Spans) != 2 {
		t.Fatalf("recent = %+v", got)
	}
	if got[0].Outcome != "ok" || got[0].Total <= 0 {
		t.Errorf("trace = %+v", got[0])
	}

	raw, err := json.Marshal(got[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"app":"prime"`, `"stage":"helo"`, `"stage":"expand"`, `"outcome":"ok"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("JSON missing %s:\n%s", want, raw)
		}
	}
}

// TestNilSafety: a nil observer (tracing disabled) must make the whole
// call chain a no-op without any branching at call sites.
func TestNilSafety(t *testing.T) {
	var o *Observer
	tr := o.StartTrace("x")
	if tr != nil {
		t.Fatalf("nil observer returned a trace")
	}
	tr.SetApp("a")
	tr.Record(StageHelo, time.Millisecond)
	tr.Finish("ok", "")
	o.Commit(tr)
	if got := o.Recent("a", 1); got != nil {
		t.Errorf("recent on nil observer = %v", got)
	}
	if got := o.Dump(1); len(got) != 0 {
		t.Errorf("dump on nil observer = %v", got)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(&Trace{ID: uint64(i)})
	}
	got := r.Recent(-1)
	if len(got) != 3 || got[0].ID != 5 || got[1].ID != 4 || got[2].ID != 3 {
		ids := make([]uint64, len(got))
		for i, tr := range got {
			ids[i] = tr.ID
		}
		t.Errorf("recent ids = %v, want [5 4 3]", ids)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d", r.Total())
	}
	if got := r.Recent(1); len(got) != 1 || got[0].ID != 5 {
		t.Errorf("recent(1) = %+v", got)
	}
}

func TestObserverUnknownAppBucket(t *testing.T) {
	o := NewObserver(nil, 2)
	tr := o.StartTrace("127.0.0.1:9")
	tr.Finish("error", "reading hello: EOF")
	o.Commit(tr)
	apps := o.Apps()
	if len(apps) != 1 || apps[0] != unknownApp {
		t.Fatalf("apps = %v", apps)
	}
	if got := o.Recent(unknownApp, 5); len(got) != 1 {
		t.Errorf("recent = %v", got)
	}
}
