package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestExposition pins the Prometheus text format: HELP/TYPE headers,
// label rendering and escaping, _total suffixes, cumulative le buckets,
// and func-backed families — each case is one self-contained registry.
func TestExposition(t *testing.T) {
	cases := []struct {
		name  string
		build func(r *Registry)
		want  []string // lines that must appear verbatim
	}{
		{
			name: "plain counter",
			build: func(r *Registry) {
				c := r.Counter("demo_sessions_total", "Sessions handled.")
				c.Add(3)
			},
			want: []string{
				"# HELP demo_sessions_total Sessions handled.",
				"# TYPE demo_sessions_total counter",
				"demo_sessions_total 3",
			},
		},
		{
			name: "labeled counters sorted",
			build: func(r *Registry) {
				v := r.CounterVec("demo_verdicts_total", "Verdicts by class.", "verdict")
				v.With("ok").Add(5)
				v.With("attack").Inc()
			},
			want: []string{
				`demo_verdicts_total{verdict="attack"} 1`,
				`demo_verdicts_total{verdict="ok"} 5`,
			},
		},
		{
			name: "label value escaping",
			build: func(r *Registry) {
				v := r.CounterVec("demo_errors_total", "Errors by detail.", "detail")
				v.With("quote\"back\\slash\nnewline").Inc()
			},
			want: []string{
				`demo_errors_total{detail="quote\"back\\slash\nnewline"} 1`,
			},
		},
		{
			name: "help escaping",
			build: func(r *Registry) {
				r.Counter("demo_x_total", "line one\nline two \\ slash")
			},
			want: []string{
				`# HELP demo_x_total line one\nline two \\ slash`,
			},
		},
		{
			name: "gauge",
			build: func(r *Registry) {
				g := r.Gauge("demo_active", "Active sessions.")
				g.Set(7)
				g.Add(-2)
			},
			want: []string{
				"# TYPE demo_active gauge",
				"demo_active 5",
			},
		},
		{
			name: "histogram buckets cumulative",
			build: func(r *Registry) {
				h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
				h.Observe(0.0005) // <= 0.001
				h.Observe(0.0005)
				h.Observe(0.05) // <= 0.1
				h.Observe(3)    // +Inf
			},
			want: []string{
				"# TYPE demo_latency_seconds histogram",
				`demo_latency_seconds_bucket{le="0.001"} 2`,
				`demo_latency_seconds_bucket{le="0.01"} 2`,
				`demo_latency_seconds_bucket{le="0.1"} 3`,
				`demo_latency_seconds_bucket{le="+Inf"} 4`,
				"demo_latency_seconds_sum 3.051",
				"demo_latency_seconds_count 4",
			},
		},
		{
			name: "histogram boundary lands in its bucket",
			build: func(r *Registry) {
				h := r.Histogram("demo_edge_seconds", "", []float64{1, 2})
				h.Observe(1) // exactly le=1: v <= bound
			},
			want: []string{
				`demo_edge_seconds_bucket{le="1"} 1`,
				`demo_edge_seconds_bucket{le="2"} 1`,
			},
		},
		{
			name: "labeled histogram",
			build: func(r *Registry) {
				v := r.HistogramVec("demo_stage_seconds", "Stage latency.", []float64{0.5}, "stage")
				v.With("helo").Observe(0.1)
			},
			want: []string{
				`demo_stage_seconds_bucket{stage="helo",le="0.5"} 1`,
				`demo_stage_seconds_count{stage="helo"} 1`,
			},
		},
		{
			name: "gauge func evaluated at scrape",
			build: func(r *Registry) {
				n := 41.0
				r.GaugeFunc("demo_depth", "Queue depth.", func() float64 { n++; return n })
			},
			want: []string{"demo_depth 42"},
		},
		{
			name: "counter vec func",
			build: func(r *Registry) {
				r.CounterVecFunc("demo_faults_total", "Injected faults.", []string{"layer", "kind"},
					func() []Sample {
						return []Sample{
							{Labels: []string{"wire", "flip"}, Value: 9},
							{Labels: []string{"hw", "drop"}, Value: 0},
						}
					})
			},
			want: []string{
				`demo_faults_total{layer="wire",kind="flip"} 9`,
				`demo_faults_total{layer="hw",kind="drop"} 0`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.build(r)
			out := expose(t, r)
			for _, want := range tc.want {
				if !strings.Contains(out, want+"\n") {
					t.Errorf("exposition missing line %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestRegistrationPanics: misuse is a construction-time programmer
// error, caught loudly — never a malformed scrape later.
func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"counter without _total", func(r *Registry) { r.Counter("demo_sessions", "") }},
		{"invalid metric name", func(r *Registry) { r.Gauge("demo-dash", "") }},
		{"invalid label name", func(r *Registry) { r.CounterVec("demo_x_total", "", "bad-label") }},
		{"duplicate name", func(r *Registry) {
			r.Gauge("demo_twice", "")
			r.Gauge("demo_twice", "")
		}},
		{"non-ascending bounds", func(r *Registry) { r.Histogram("demo_h", "", []float64{1, 1}) }},
		{"wrong label arity", func(r *Registry) { r.CounterVec("demo_y_total", "", "a").With("x", "y") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

// TestVecConcurrent hammers one labeled family from many goroutines,
// scraping concurrently: the copy-on-write child map must neither race
// nor lose increments. Run under -race.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("demo_ops_total", "", "worker")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4) // collide on labels deliberately
			for i := 0; i < perWorker; i++ {
				v.With(label).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = expose(t, r)
		}
	}()
	wg.Wait()
	<-done
	var total uint64
	for i := 0; i < 4; i++ {
		total += v.With(fmt.Sprintf("w%d", i)).Value()
	}
	if total != workers*perWorker {
		t.Errorf("lost increments: total %d, want %d", total, workers*perWorker)
	}
}

func TestHistogramSnapshotAndDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("demo_d_seconds", "", []float64{0.001, 1})
	h.ObserveDuration(500 * time.Microsecond)
	h.ObserveDuration(2 * time.Second)
	s := h.Snapshot()
	if s.Count != 2 || s.Counts[0] != 1 || s.Counts[2] != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Sum < 2.0004 || s.Sum > 2.0006 {
		t.Errorf("sum = %v", s.Sum)
	}
}
