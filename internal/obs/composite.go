package obs

import (
	"bufio"
	"io"
	"net/http"
)

// Part names one registry's slice of a composite exposition: every
// sample from Registry is emitted with the composite's label set to
// Value (e.g. shard="2"). An empty Value omits the label for that part,
// which is how router-level families sit beside per-shard ones in the
// same document.
type Part struct {
	Value    string
	Registry *Registry
}

// WriteComposite renders several registries as one Prometheus text
// exposition document. The gateway registers every family eagerly at
// construction, so N replicas mean N registries carrying the same
// family names — a naive concatenation would repeat HELP/TYPE blocks
// and emit indistinguishable duplicate series, and real scrapers reject
// both. WriteComposite instead groups families by name across parts
// (first-seen order), emits each HELP/TYPE header once, and injects
// `label="<part.Value>"` into every sample line so per-shard series
// stay distinct. Families whose declared types disagree across parts
// keep the first part's header; their samples still carry the part
// label, so nothing is silently dropped.
func WriteComposite(w io.Writer, label string, parts []Part) error {
	type slice struct {
		f     *family
		value string
	}
	var order []string
	byName := make(map[string][]slice)
	for _, p := range parts {
		if p.Registry == nil {
			continue
		}
		p.Registry.mu.Lock()
		fams := make([]*family, len(p.Registry.fams))
		copy(fams, p.Registry.fams)
		p.Registry.mu.Unlock()
		for _, f := range fams {
			if _, seen := byName[f.name]; !seen {
				order = append(order, f.name)
			}
			byName[f.name] = append(byName[f.name], slice{f: f, value: p.Value})
		}
	}
	bw := bufio.NewWriter(w)
	for _, name := range order {
		slices := byName[name]
		writeHeader(bw, slices[0].f)
		for _, s := range slices {
			if s.value == "" {
				s.f.writeSamples(bw)
			} else {
				s.f.writeSamples(bw, label, s.value)
			}
		}
	}
	return bw.Flush()
}

// WithComposite replaces the admin handler's /metrics route with a
// composite exposition over the given parts. The router uses it so one
// scrape covers the router's own registry plus every shard's, with a
// shard label keeping the series apart.
func WithComposite(label string, parts []Part) AdminOption {
	return WithRoute("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteComposite(w, label, parts)
	}))
}
