package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func adminGet(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestAdminEndpoints(t *testing.T) {
	o := NewObserver(nil, 8)
	o.Registry().Counter("demo_hits_total", "Hits.").Add(2)
	tr := o.StartTrace("127.0.0.1:1234")
	tr.SetApp("prime")
	tr.Record(StageVerify, 3*time.Millisecond)
	tr.Finish("ok", "")
	o.Commit(tr)

	srv := httptest.NewServer(AdminHandler(o))
	defer srv.Close()

	code, body, hdr := adminGet(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "demo_hits_total 2\n") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, hdr = adminGet(t, srv, "/debug/sessions?app=prime&n=4")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/debug/sessions status %d, type %q", code, hdr.Get("Content-Type"))
	}
	var payload struct {
		Sessions map[string][]struct {
			App     string `json:"app"`
			Outcome string `json:"outcome"`
			Spans   []struct {
				Stage string `json:"stage"`
				DurUS int64  `json:"dur_us"`
			} `json:"spans"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("sessions JSON: %v\n%s", err, body)
	}
	traces := payload.Sessions["prime"]
	if len(traces) != 1 || traces[0].Outcome != "ok" || len(traces[0].Spans) != 1 ||
		traces[0].Spans[0].Stage != "verify" {
		t.Errorf("sessions payload = %+v", payload)
	}

	if code, _, _ := adminGet(t, srv, "/debug/sessions?n=zero"); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
	if code, body, _ := adminGet(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
	code, body, hdr = adminGet(t, srv, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Errorf("healthz: %d %q", code, hdr.Get("Content-Type"))
	}
	var health struct {
		Status     string                  `json:"status"`
		Subsystems map[string]HealthStatus `json:"subsystems"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || len(health.Subsystems) != 0 {
		t.Errorf("healthz payload = %+v", health)
	}
	if code, _, _ := adminGet(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

func TestAdminHealthSubsystems(t *testing.T) {
	o := NewObserver(nil, 8)
	level := HealthOK
	extraHit := false
	srv := httptest.NewServer(AdminHandler(o,
		WithHealth("journal", func() HealthStatus {
			return HealthStatus{Level: level, Detail: "chain head seq 7"}
		}),
		WithRoute("/debug/journal", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			extraHit = true
			w.Write([]byte("{}"))
		})),
	))
	defer srv.Close()

	decode := func(body string) (string, map[string]HealthStatus) {
		t.Helper()
		var h struct {
			Status     string                  `json:"status"`
			Subsystems map[string]HealthStatus `json:"subsystems"`
		}
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("healthz JSON: %v\n%s", err, body)
		}
		return h.Status, h.Subsystems
	}

	code, body, _ := adminGet(t, srv, "/healthz")
	status, subs := decode(body)
	if code != http.StatusOK || status != "ok" || subs["journal"].Level != HealthOK {
		t.Errorf("ok probe: %d %s %+v", code, status, subs)
	}

	// Degraded keeps the 200: a gateway shedding evidence to memory is
	// impaired, not dead, and must not be restart-looped.
	level = HealthDegraded
	code, body, _ = adminGet(t, srv, "/healthz")
	if status, subs = decode(body); code != http.StatusOK || status != "degraded" ||
		subs["journal"].Level != HealthDegraded {
		t.Errorf("degraded probe: %d %s %+v", code, status, subs)
	}

	level = HealthDown
	code, body, _ = adminGet(t, srv, "/healthz")
	if status, _ = decode(body); code != http.StatusServiceUnavailable || status != "down" {
		t.Errorf("down probe: %d %s", code, status)
	}

	if code, _, _ := adminGet(t, srv, "/debug/journal"); code != http.StatusOK || !extraHit {
		t.Errorf("extra route: status %d, hit %v", code, extraHit)
	}
	if _, body, _ := adminGet(t, srv, "/"); !strings.Contains(body, "/debug/journal") {
		t.Errorf("index missing mounted route:\n%s", body)
	}
}
