package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func adminGet(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestAdminEndpoints(t *testing.T) {
	o := NewObserver(nil, 8)
	o.Registry().Counter("demo_hits_total", "Hits.").Add(2)
	tr := o.StartTrace("127.0.0.1:1234")
	tr.SetApp("prime")
	tr.Record(StageVerify, 3*time.Millisecond)
	tr.Finish("ok", "")
	o.Commit(tr)

	srv := httptest.NewServer(AdminHandler(o))
	defer srv.Close()

	code, body, hdr := adminGet(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "demo_hits_total 2\n") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, hdr = adminGet(t, srv, "/debug/sessions?app=prime&n=4")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/debug/sessions status %d, type %q", code, hdr.Get("Content-Type"))
	}
	var payload struct {
		Sessions map[string][]struct {
			App     string `json:"app"`
			Outcome string `json:"outcome"`
			Spans   []struct {
				Stage string `json:"stage"`
				DurUS int64  `json:"dur_us"`
			} `json:"spans"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("sessions JSON: %v\n%s", err, body)
	}
	traces := payload.Sessions["prime"]
	if len(traces) != 1 || traces[0].Outcome != "ok" || len(traces[0].Spans) != 1 ||
		traces[0].Spans[0].Stage != "verify" {
		t.Errorf("sessions payload = %+v", payload)
	}

	if code, _, _ := adminGet(t, srv, "/debug/sessions?n=zero"); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
	if code, body, _ := adminGet(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
	if code, body, _ := adminGet(t, srv, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, _, _ := adminGet(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}
