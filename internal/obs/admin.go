package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// HealthLevel grades one subsystem for the /healthz probe.
type HealthLevel string

const (
	// HealthOK: the subsystem is fully functional.
	HealthOK HealthLevel = "ok"
	// HealthDegraded: the subsystem lost capability but the gateway is
	// still serving — /healthz stays 200 so orchestrators do not kill a
	// live verifier over, say, its evidence plane shedding to memory.
	HealthDegraded HealthLevel = "degraded"
	// HealthDown: the subsystem is gone and the process should be
	// restarted; /healthz turns 503.
	HealthDown HealthLevel = "down"
)

// HealthStatus is one subsystem's probe result.
type HealthStatus struct {
	Level  HealthLevel `json:"level"`
	Detail string      `json:"detail,omitempty"`
}

// AdminOption extends AdminHandler with subsystem health probes and
// extra routes.
type AdminOption func(*adminConfig)

type adminConfig struct {
	health map[string]func() HealthStatus
	routes map[string]http.Handler
}

// WithHealth registers a named subsystem probe, evaluated on every
// /healthz request. The overall status is the worst subsystem level;
// only HealthDown flips the HTTP status to 503.
func WithHealth(name string, probe func() HealthStatus) AdminOption {
	return func(c *adminConfig) { c.health[name] = probe }
}

// WithRoute mounts an extra handler on the admin mux (e.g. the journal's
// /debug/journal audit queries).
func WithRoute(pattern string, h http.Handler) AdminOption {
	return func(c *adminConfig) { c.routes[pattern] = h }
}

// AdminHandler serves the observability surface of one Observer:
//
//	/metrics          Prometheus text exposition of the registry
//	/debug/sessions   JSON dump of recent session traces
//	                  (?app=<name> to filter, ?n=<count> per app, default 16)
//	/debug/pprof/     the standard net/http/pprof handlers
//	/healthz          structured liveness probe: JSON status plus
//	                  per-subsystem levels; 503 only when a subsystem
//	                  reports down
//
// plus any routes mounted via [WithRoute]. The handler is read-only and
// safe to serve concurrently with a live gateway: scrapes read atomics
// and take only the short ring and registration mutexes.
func AdminHandler(o *Observer, opts ...AdminOption) http.Handler {
	cfg := adminConfig{
		health: make(map[string]func() HealthStatus),
		routes: make(map[string]http.Handler),
	}
	for _, opt := range opts {
		opt(&cfg)
	}

	mux := http.NewServeMux()
	if _, override := cfg.routes["/metrics"]; !override {
		// A route mounted on /metrics (e.g. WithComposite) replaces the
		// default single-registry exposition instead of double-registering.
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = o.Registry().WritePrometheus(w)
		})
	}
	mux.HandleFunc("/debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		var payload any
		if app := r.URL.Query().Get("app"); app != "" {
			payload = map[string][]*Trace{app: o.Recent(app, n)}
		} else {
			payload = o.Dump(n)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"sessions": payload})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		overall := HealthOK
		subsystems := make(map[string]HealthStatus, len(cfg.health))
		for name, probe := range cfg.health {
			st := probe()
			if st.Level == "" {
				st.Level = HealthOK
			}
			subsystems[name] = st
			switch st.Level {
			case HealthDown:
				overall = HealthDown
			case HealthDegraded:
				if overall == HealthOK {
					overall = HealthDegraded
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if overall == HealthDown {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"status": overall, "subsystems": subsystems})
	})

	index := []string{"/metrics", "/debug/sessions", "/debug/pprof/", "/healthz"}
	for pattern, h := range cfg.routes {
		mux.Handle(pattern, h)
		if pattern != "/metrics" {
			index = append(index, pattern)
		}
	}
	sort.Strings(index[4:])
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		body := "raptrack admin endpoint\n\n"
		for _, p := range index {
			body += p + "\n"
		}
		_, _ = w.Write([]byte(body))
	})
	return mux
}
