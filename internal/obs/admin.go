package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// AdminHandler serves the observability surface of one Observer:
//
//	/metrics          Prometheus text exposition of the registry
//	/debug/sessions   JSON dump of recent session traces
//	                  (?app=<name> to filter, ?n=<count> per app, default 16)
//	/debug/pprof/     the standard net/http/pprof handlers
//	/healthz          liveness probe ("ok")
//
// The handler is read-only and safe to serve concurrently with a live
// gateway: scrapes read atomics and take only the short ring and
// registration mutexes.
func AdminHandler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		var payload any
		if app := r.URL.Query().Get("app"); app != "" {
			payload = map[string][]*Trace{app: o.Recent(app, n)}
		} else {
			payload = o.Dump(n)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"sessions": payload})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("raptrack admin endpoint\n\n/metrics\n/debug/sessions\n/debug/pprof/\n/healthz\n"))
	})
	return mux
}
