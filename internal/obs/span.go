package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Stage is one typed phase of a gateway attestation session. The stages
// partition a session's wall clock the way the paper partitions
// attestation cost: handshake, evidence transfer, path reconstruction,
// verdict.
type Stage uint8

const (
	// StageAccept is the wait for a session slot after the TCP accept.
	StageAccept Stage = iota
	// StageHelo is the HELO frame read plus parse.
	StageHelo
	// StageDictPush is the live-dictionary DICT frame write.
	StageDictPush
	// StageCollect spans the challenge write through the last report
	// frame read — the evidence transfer.
	StageCollect
	// StageExpand is SpecCFA marker expansion inside verification.
	StageExpand
	// StageVerify spans handing evidence to the worker pool through the
	// verdict coming back: queue wait plus pushdown reconstruction.
	StageVerify
	// StageVerdictWrite is the VRDT frame write.
	StageVerdictWrite

	// NumStages bounds the stage space (array-indexed histograms).
	NumStages
)

var stageNames = [NumStages]string{
	StageAccept:       "accept",
	StageHelo:         "helo",
	StageDictPush:     "dict_push",
	StageCollect:      "collect",
	StageExpand:       "expand",
	StageVerify:       "verify",
	StageVerdictWrite: "verdict_write",
}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "invalid-stage"
}

// MarshalJSON renders the stage name, not its numeric value.
func (s Stage) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Span is one recorded stage: its offset from the trace start and its
// duration, both monotonic.
type Span struct {
	Stage Stage
	Start time.Duration
	Dur   time.Duration
}

// MarshalJSON emits microsecond integers — span durations are protocol
// latencies, not nanosecond phenomena, and integers diff cleanly.
func (sp Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Stage   string `json:"stage"`
		StartUS int64  `json:"start_us"`
		DurUS   int64  `json:"dur_us"`
	}{sp.Stage.String(), sp.Start.Microseconds(), sp.Dur.Microseconds()})
}

// Trace is the span record of one gateway session. It is built by a
// single session goroutine and becomes immutable once committed to a
// ring; methods on a nil *Trace are no-ops so call sites never branch
// on whether tracing is attached.
type Trace struct {
	ID      uint64
	App     string
	Remote  string
	Began   time.Time
	Spans   []Span
	Outcome string // "ok", a verify reason code, "shed-busy", or "error"
	Detail  string // human detail for non-ok outcomes
	Total   time.Duration

	start time.Time // monotonic anchor
}

// SetApp records the application once the HELO frame names it.
func (t *Trace) SetApp(app string) {
	if t != nil {
		t.App = app
	}
}

// Record appends one span of duration d ending now. The span's start
// offset is derived from the trace anchor, so spans recorded in
// protocol order render as a contiguous timeline.
func (t *Trace) Record(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	start := time.Since(t.start) - d
	if start < 0 {
		start = 0
	}
	t.Spans = append(t.Spans, Span{Stage: s, Start: start, Dur: d})
}

// RecordAt appends one span with an explicit start offset — for
// sub-phases measured elsewhere (e.g. expansion timed inside the
// verifier) that should render inside their parent span.
func (t *Trace) RecordAt(s Stage, start, d time.Duration) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{Stage: s, Start: start, Dur: d})
}

// Finish stamps the outcome and total duration. Called once, by the
// session goroutine, just before the trace is committed.
func (t *Trace) Finish(outcome, detail string) {
	if t == nil {
		return
	}
	t.Outcome = outcome
	t.Detail = detail
	t.Total = time.Since(t.start)
}

// MarshalJSON renders the trace for /debug/sessions.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      uint64    `json:"id"`
		App     string    `json:"app"`
		Remote  string    `json:"remote"`
		Began   time.Time `json:"began"`
		TotalUS int64     `json:"total_us"`
		Outcome string    `json:"outcome"`
		Detail  string    `json:"detail,omitempty"`
		Spans   []Span    `json:"spans"`
	}{t.ID, t.App, t.Remote, t.Began, t.Total.Microseconds(), t.Outcome, t.Detail, t.Spans})
}

// Ring holds the last N committed traces of one application. Commits
// take a short mutex once per session — nothing on the per-frame path.
type Ring struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total uint64
}

// NewRing returns a ring holding up to n traces (n < 1 selects 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*Trace, n)}
}

// Add commits one finished trace, evicting the oldest past capacity.
func (r *Ring) Add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many traces were ever committed.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Recent returns up to n traces, newest first.
func (r *Ring) Recent(n int) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 0 || n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= len(r.buf) && len(out) < n; i++ {
		t := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}
