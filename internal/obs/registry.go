// Package obs is the unified observability layer: a lock-free metrics
// registry ([Registry]) that is the single source of truth for every
// counter the serving stack exposes, per-session span tracing ([Trace],
// [Ring]) attributing attestation latency to typed protocol stages, and
// an admin HTTP endpoint ([AdminHandler]) serving Prometheus text-format
// metrics, recent session traces, and pprof.
//
// The paper's whole pitch is *measurable* efficiency — per-branch
// overhead, log volume, attestation latency against TRACES-style
// instrumentation — so the reproduction's gateway carries the same
// discipline at service scale: one scrape answers where attestation time
// goes.
//
// # Hot-path cost model
//
// Counters and histograms are plain atomics; labeled families resolve
// label values through a copy-on-write map (lock-free reads, a mutex
// only on first-use registration of a new label set), and callers are
// expected to pre-resolve hot children at construction time anyway.
// Func-backed metrics ([Registry.GaugeFunc] and friends) are evaluated
// only at scrape time, so values that already live elsewhere (cache
// occupancy, breaker state, fault schedules) cost nothing per session.
//
// The package depends only on the standard library, so every layer of
// the stack — server, remote, faults — may import it without cycles.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType is the Prometheus exposition type of one metric family.
type MetricType uint8

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and never block.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that may go up and down (stored as an int64).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bounds are upper bucket limits
// in ascending order; an implicit +Inf bucket catches the tail. Observe
// is two atomic adds plus a CAS loop for the sum — no locks.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // per-bucket (not cumulative); len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // smallest i with bounds[i] >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time read of a histogram. Counts are
// per-bucket (not cumulative) and include the +Inf bucket last.
type HistogramSnapshot struct {
	Bounds []float64 // upper limits, ascending; +Inf implicit
	Counts []uint64  // len(Bounds)+1
	Count  uint64
	Sum    float64
}

// Snapshot reads the histogram once. Buckets observed mid-read may skew
// Count by a few observations; the numbers are exact once quiescent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sample is one value of a func-backed labeled family, produced at
// scrape time.
type Sample struct {
	Labels []string
	Value  float64
}

// child is one labeled instance of a family.
type child struct {
	values []string
	metric any // *Counter, *Gauge, or *Histogram
}

// family is one exposition block: a name, a type, and either concrete
// children (lock-free copy-on-write map) or a scrape-time collect func.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex // guards child insertion
	children atomic.Pointer[map[string]*child]

	collect func() []Sample // func-backed families (exclusive with children)
}

// labelKey joins label values with a byte that cannot occur in them
// unescaped ambiguity-free enough for map keying.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) getOrCreate(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	if m := f.children.Load(); m != nil {
		if c, ok := (*m)[key]; ok {
			return c.metric
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.children.Load()
	if old != nil {
		if c, ok := (*old)[key]; ok {
			return c.metric
		}
	}
	var metric any
	switch f.typ {
	case TypeCounter:
		metric = &Counter{}
	case TypeGauge:
		metric = &Gauge{}
	default:
		metric = newHistogram(f.bounds)
	}
	next := make(map[string]*child, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	vals := make([]string, len(values))
	copy(vals, values)
	next[key] = &child{values: vals, metric: metric}
	f.children.Store(&next)
	return metric
}

// CounterVec is a labeled family of counters.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Pre-resolve hot children at construction time.
func (v *CounterVec) With(values ...string) *Counter { return v.f.getOrCreate(values).(*Counter) }

// GaugeVec is a labeled family of gauges.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.getOrCreate(values).(*Gauge) }

// HistogramVec is a labeled family of histograms sharing one bucket
// layout.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.getOrCreate(values).(*Histogram)
}

// Registry holds metric families in registration order and renders them
// in Prometheus text exposition format. Registration is cheap but
// mutex-guarded; metric updates never touch the registry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// register validates and installs one family. Misuse — a bad name, a
// duplicate, a counter without the _total suffix — is a programmer
// error and panics at construction time, never at scrape time.
func (r *Registry) register(name, help string, typ MetricType, labels []string, bounds []float64, collect func() []Sample) *family {
	if !metricNameRE.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if typ == TypeCounter && !strings.HasSuffix(name, "_total") {
		panic("obs: counter " + name + " must end in _total")
	}
	for _, l := range labels {
		if !labelNameRE.MatchString(l) {
			panic("obs: metric " + name + ": invalid label name " + strconv.Quote(l))
		}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + ": bounds not ascending")
		}
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, bounds: bounds, collect: collect}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers a plain counter. The name must end in _total.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil, nil)
	return f.getOrCreate(nil).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labels, nil, nil)}
}

// Gauge registers a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil, nil)
	return f.getOrCreate(nil).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labels, nil, nil)}
}

// Histogram registers a fixed-bucket histogram with the given upper
// bounds in ascending order (seconds, for latency histograms).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, bounds, nil)
	return f.getOrCreate(nil).(*Histogram)
}

// HistogramVec registers a labeled histogram family sharing one bucket
// layout.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labels, bounds, nil)}
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the bridge for values that already live elsewhere (queue depths,
// cache occupancy) without a second counting system.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, TypeGauge, nil, nil, func() []Sample {
		return []Sample{{Value: f()}}
	})
}

// CounterFunc registers a counter read at scrape time from an existing
// monotone source. The name must end in _total.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, TypeCounter, nil, nil, func() []Sample {
		return []Sample{{Value: f()}}
	})
}

// GaugeVecFunc registers a labeled gauge family collected at scrape
// time.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, collect func() []Sample) {
	r.register(name, help, TypeGauge, labels, nil, collect)
}

// CounterVecFunc registers a labeled counter family collected at scrape
// time.
func (r *Registry) CounterVecFunc(name, help string, labels []string, collect func() []Sample) {
	r.register(name, help, TypeCounter, labels, nil, collect)
}

// --- exposition ------------------------------------------------------

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {a="x",b="y"}; extras appends further pairs as
// alternating name/value strings (the injected shard label in composite
// expositions, le for histogram buckets). Pairs with an empty name are
// skipped. Returns "" when no pair survives.
func labelPairs(names, values []string, extras ...string) string {
	extra := 0
	for i := 0; i+1 < len(extras); i += 2 {
		if extras[i] != "" {
			extra++
		}
	}
	if len(names) == 0 && extra == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	wrote := false
	emit := func(n, v string) {
		if wrote {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
		wrote = true
	}
	for i, n := range names {
		emit(n, values[i])
	}
	for i := 0; i+1 < len(extras); i += 2 {
		if extras[i] != "" {
			emit(extras[i], extras[i+1])
		}
	}
	b.WriteByte('}')
	return b.String()
}

// writeHeader emits the HELP/TYPE comment block for one family.
func writeHeader(bw *bufio.Writer, f *family) {
	if f.help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
}

// writeSamples renders one family's sample lines (no header), appending
// the given extra label pairs (alternating name/value) to every line —
// the hook composite expositions use to inject a shard label.
func (f *family) writeSamples(bw *bufio.Writer, extras ...string) {
	if f.collect != nil {
		for _, s := range f.collect() {
			fmt.Fprintf(bw, "%s%s %s\n", f.name, labelPairs(f.labels, s.Labels, extras...), formatFloat(s.Value))
		}
		return
	}
	m := f.children.Load()
	if m == nil {
		return
	}
	kids := make([]*child, 0, len(*m))
	for _, c := range *m {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool {
		return labelKey(kids[i].values) < labelKey(kids[j].values)
	})
	for _, c := range kids {
		switch metric := c.metric.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPairs(f.labels, c.values, extras...), metric.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPairs(f.labels, c.values, extras...), metric.Value())
		case *Histogram:
			s := metric.Snapshot()
			var cum uint64
			for i, cnt := range s.Counts {
				cum += cnt
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				withLe := append(append(make([]string, 0, len(extras)+2), extras...), "le", le)
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, c.values, withLe...), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelPairs(f.labels, c.values, extras...), formatFloat(s.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelPairs(f.labels, c.values, extras...), cum)
		}
	}
}

// WritePrometheus renders every registered family in text exposition
// format (the format served on /metrics). Families appear in
// registration order; children within a family are sorted by label
// values so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeHeader(bw, f)
		f.writeSamples(bw)
	}
	return bw.Flush()
}
