package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize is how many session traces an Observer keeps per app
// when constructed with ringSize <= 0.
const DefaultRingSize = 64

// Observer binds a metrics registry to per-app session-trace rings: the
// one handle a gateway (and its admin endpoint) needs. One Observer
// serves one gateway — its registry namespace is not shareable between
// two gateways, which would register the same families twice.
type Observer struct {
	reg      *Registry
	ringSize int
	ids      atomic.Uint64

	mu    sync.Mutex
	rings map[string]*Ring
}

// NewObserver builds an observer over reg (nil: a fresh registry),
// keeping ringSize traces per app (<= 0: DefaultRingSize).
func NewObserver(reg *Registry, ringSize int) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Observer{reg: reg, ringSize: ringSize, rings: make(map[string]*Ring)}
}

// Registry returns the underlying metrics registry.
func (o *Observer) Registry() *Registry { return o.reg }

// StartTrace begins the span record of one session. Safe on a nil
// Observer (returns a nil Trace, whose methods are no-ops).
func (o *Observer) StartTrace(remote string) *Trace {
	if o == nil {
		return nil
	}
	return &Trace{
		ID:     o.ids.Add(1),
		Remote: remote,
		Began:  time.Now(),
		start:  time.Now(),
	}
}

// unknownApp buckets traces of sessions that died before a HELO named
// their application.
const unknownApp = "~unknown"

// Commit files a finished trace into its app's ring.
func (o *Observer) Commit(t *Trace) {
	if o == nil || t == nil {
		return
	}
	app := t.App
	if app == "" {
		app = unknownApp
	}
	o.mu.Lock()
	r, ok := o.rings[app]
	if !ok {
		r = NewRing(o.ringSize)
		o.rings[app] = r
	}
	o.mu.Unlock()
	r.Add(t)
}

// Apps lists applications with at least one committed trace, sorted.
func (o *Observer) Apps() []string {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	names := make([]string, 0, len(o.rings))
	for n := range o.rings {
		names = append(names, n)
	}
	o.mu.Unlock()
	sort.Strings(names)
	return names
}

// Recent returns up to n committed traces for app, newest first.
func (o *Observer) Recent(app string, n int) []*Trace {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	r := o.rings[app]
	o.mu.Unlock()
	if r == nil {
		return nil
	}
	return r.Recent(n)
}

// Dump returns up to n recent traces per app, newest first — the
// /debug/sessions payload.
func (o *Observer) Dump(n int) map[string][]*Trace {
	out := make(map[string][]*Trace)
	if o == nil {
		return out
	}
	for _, app := range o.Apps() {
		out[app] = o.Recent(app, n)
	}
	return out
}
