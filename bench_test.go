package raptrack

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation (see DESIGN.md §6 for the experiment index). Wall-clock time
// measures the simulator; the paper's actual quantities (cycles, CFLog
// bytes, code bytes) are attached as custom metrics so `go test -bench`
// output regenerates each figure's series:
//
//	BenchmarkFig1a  naive-MTB CFLog bytes vs TRACES      (cflog_B, ratio)
//	BenchmarkFig1b  TRACES runtime vs baseline           (cycles, overhead_pct)
//	BenchmarkFig8   runtime: naive / RAP-Track / TRACES  (cycles, overhead_pct)
//	BenchmarkFig9   CFLog: naive / RAP-Track / TRACES    (cflog_B)
//	BenchmarkFig10  code size: RAP-Track / TRACES        (code_B, overhead_pct)
//	BenchmarkVerify evidence-verification throughput     (packets, transfers)
//	BenchmarkAblation* (NOP padding, loop optimization)
//
// `go run ./cmd/benchsuite` prints the same data as aligned tables.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/baseline/naive"
	"raptrack/internal/baseline/traces"
	"raptrack/internal/core"
	"raptrack/internal/linker"
	"raptrack/internal/remote"
	"raptrack/internal/server"
	"raptrack/internal/speccfa"
	"raptrack/internal/trace"
	"raptrack/internal/verify"
)

// attest runs one batch attestation session through the unified client
// API (remote.Client).
func attestApp(ep *remote.ProverEndpoint, conn io.ReadWriter, app string) (remote.GatewayVerdict, error) {
	return remote.NewClient(ep).Attest(conn, app)
}

func evalApps(b *testing.B) []apps.App {
	b.Helper()
	out := make([]apps.App, 0, len(apps.EvalOrder))
	for _, n := range apps.EvalOrder {
		a, err := apps.Get(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func runNaive(b *testing.B, a apps.App) *naive.Result {
	b.Helper()
	res, err := naive.Run(a.Build(), naive.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func runTraces(b *testing.B, a apps.App) *traces.Result {
	b.Helper()
	out, err := traces.Instrument(a.Build(), traces.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	res, err := traces.Run(out, traces.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func runRAP(b *testing.B, a apps.App, opts linker.Options) (core.RunStats, []*attest.Report, *linker.Output, *attest.HMACKey, attest.Challenge) {
	b.Helper()
	link, err := core.LinkForCFA(a.Build(), opts)
	if err != nil {
		b.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		b.Fatal(err)
	}
	prover, err := core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
	if err != nil {
		b.Fatal(err)
	}
	chal, err := attest.NewChallenge(a.Name)
	if err != nil {
		b.Fatal(err)
	}
	reports, stats, err := prover.Attest(chal)
	if err != nil {
		b.Fatal(err)
	}
	return stats, reports, link, key, chal
}

func overheadPct(x, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(x) - float64(base)) / float64(base)
}

// BenchmarkFig1a regenerates Fig. 1(a): naive-MTB CFLog sizes vs TRACES.
func BenchmarkFig1a(b *testing.B) {
	for _, a := range evalApps(b) {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			var nBytes, tBytes uint64
			for i := 0; i < b.N; i++ {
				nBytes = runNaive(b, a).CFLogBytes
				tBytes = runTraces(b, a).CFLogBytes
			}
			b.ReportMetric(float64(nBytes), "naive_cflog_B")
			b.ReportMetric(float64(tBytes), "traces_cflog_B")
			b.ReportMetric(float64(nBytes)/float64(tBytes), "naive/traces_x")
		})
	}
}

// BenchmarkFig1b regenerates Fig. 1(b): instrumentation runtime overhead.
func BenchmarkFig1b(b *testing.B) {
	for _, a := range evalApps(b) {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			var base, tr uint64
			for i := 0; i < b.N; i++ {
				base = runNaive(b, a).Cycles // naive == uninstrumented runtime
				tr = runTraces(b, a).Cycles
			}
			b.ReportMetric(float64(base), "baseline_cyc")
			b.ReportMetric(float64(tr), "traces_cyc")
			b.ReportMetric(float64(tr)/float64(base), "traces/baseline_x")
		})
	}
}

// BenchmarkFig8 regenerates Fig. 8: runtime across all four systems.
func BenchmarkFig8(b *testing.B) {
	for _, a := range evalApps(b) {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			var nCyc, rCyc, tCyc uint64
			for i := 0; i < b.N; i++ {
				nCyc = runNaive(b, a).Cycles
				stats, _, _, _, _ := runRAP(b, a, core.DefaultLinkOptions())
				rCyc = stats.Cycles
				tCyc = runTraces(b, a).Cycles
			}
			b.ReportMetric(float64(nCyc), "naive_cyc")
			b.ReportMetric(float64(rCyc), "rap_cyc")
			b.ReportMetric(float64(tCyc), "traces_cyc")
			b.ReportMetric(overheadPct(rCyc, nCyc), "rap_overhead_pct")
			b.ReportMetric(overheadPct(tCyc, nCyc), "traces_overhead_pct")
		})
	}
}

// BenchmarkFig9 regenerates Fig. 9: CFLog size across systems.
func BenchmarkFig9(b *testing.B) {
	for _, a := range evalApps(b) {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			var nB, rB, tB uint64
			for i := 0; i < b.N; i++ {
				nB = runNaive(b, a).CFLogBytes
				stats, _, _, _, _ := runRAP(b, a, core.DefaultLinkOptions())
				rB = uint64(stats.CFLogBytes)
				tB = runTraces(b, a).CFLogBytes
			}
			b.ReportMetric(float64(nB), "naive_cflog_B")
			b.ReportMetric(float64(rB), "rap_cflog_B")
			b.ReportMetric(float64(tB), "traces_cflog_B")
		})
	}
}

// BenchmarkFig10 regenerates Fig. 10: program memory overhead.
func BenchmarkFig10(b *testing.B) {
	for _, a := range evalApps(b) {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			var baseB, rapB, trB uint32
			for i := 0; i < b.N; i++ {
				link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
				if err != nil {
					b.Fatal(err)
				}
				baseB = link.Stats.CodeBefore
				rapB = link.Stats.CodeAfter
				tout, err := traces.Instrument(a.Build(), traces.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				trB = tout.Stats.CodeAfter
			}
			b.ReportMetric(float64(baseB), "baseline_code_B")
			b.ReportMetric(float64(rapB), "rap_code_B")
			b.ReportMetric(float64(trB), "traces_code_B")
			b.ReportMetric(overheadPct(uint64(rapB), uint64(baseB)), "rap_overhead_pct")
			b.ReportMetric(overheadPct(uint64(trB), uint64(baseB)), "traces_overhead_pct")
		})
	}
}

// BenchmarkVerify measures verifier-side path reconstruction throughput
// (the pushdown-summarization search) on real evidence.
func BenchmarkVerify(b *testing.B) {
	for _, a := range evalApps(b) {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			_, reports, link, key, chal := runRAP(b, a, core.DefaultLinkOptions())
			verifier := core.NewVerifier(link, key)
			b.ResetTimer()
			var transfers, packets uint64
			for i := 0; i < b.N; i++ {
				verdict, err := verifier.Verify(chal, reports)
				if err != nil {
					b.Fatal(err)
				}
				if !verdict.OK {
					b.Fatalf("rejected: %s", verdict.Reason())
				}
				transfers = verdict.Transfers
				packets = uint64(verdict.Packets)
			}
			b.ReportMetric(float64(packets), "packets")
			b.ReportMetric(float64(transfers), "transfers")
		})
	}
}

// BenchmarkAblationNopPad measures packet loss when the MTBAR stubs are
// not padded against the MTB activation latency (§V-C).
func BenchmarkAblationNopPad(b *testing.B) {
	a, err := apps.Get("prime")
	if err != nil {
		b.Fatal(err)
	}
	for _, pad := range []int{0, 1, 2} {
		pad := pad
		b.Run(map[int]string{0: "nopad", 1: "pad1", 2: "pad2"}[pad], func(b *testing.B) {
			opts := core.DefaultLinkOptions()
			opts.NopPad = pad
			var dropped float64
			for i := 0; i < b.N; i++ {
				link, err := core.LinkForCFA(a.Build(), opts)
				if err != nil {
					b.Fatal(err)
				}
				key, _ := attest.GenerateHMACKey()
				prover, err := core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem()})
				if err != nil {
					b.Fatal(err)
				}
				chal, _ := attest.NewChallenge(a.Name)
				if _, _, err := prover.Attest(chal); err != nil {
					b.Fatal(err)
				}
				dropped = float64(prover.Engine.MTB.DroppedArming)
			}
			b.ReportMetric(dropped, "dropped_packets")
		})
	}
}

// BenchmarkAblationLoopOpt measures the §IV-D loop optimization's effect
// on evidence volume and runtime.
func BenchmarkAblationLoopOpt(b *testing.B) {
	a, err := apps.Get("syringe")
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		mod  func(*linker.Options)
	}{
		{"nested", func(*linker.Options) {}},
		{"innermost", func(o *linker.Options) { o.NestedLoopOpt = false }},
		{"off", func(o *linker.Options) { o.LoopOpt = false }},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			opts := core.DefaultLinkOptions()
			cfg.mod(&opts)
			var cyc, logB uint64
			for i := 0; i < b.N; i++ {
				stats, _, _, _, _ := runRAP(b, a, opts)
				cyc, logB = stats.Cycles, uint64(stats.CFLogBytes)
			}
			b.ReportMetric(float64(cyc), "cycles")
			b.ReportMetric(float64(logB), "cflog_B")
		})
	}
}

// BenchmarkSimulator measures raw simulator throughput (instructions per
// wall-clock second) on the longest workload.
func BenchmarkSimulator(b *testing.B) {
	a, err := apps.Get("prime")
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res := runNaive(b, a)
		instrs += res.Steps
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// BenchmarkSpecCFA measures the SpecCFA speculation extension: evidence
// bytes with a dictionary mined from a prior session vs without.
func BenchmarkSpecCFA(b *testing.B) {
	for _, name := range []string{"gps", "ultrasonic", "prime"} {
		name := name
		b.Run(name, func(b *testing.B) {
			a, err := apps.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			// Mine once from a baseline session.
			stats1, reports1, link, key, _ := runRAP(b, a, core.DefaultLinkOptions())
			var log []byte
			for _, r := range reports1 {
				log = append(log, r.CFLog...)
			}
			dict, err := speccfa.Mine(trace.DecodePackets(log), 8, 2, 8)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var compressed int
			for i := 0; i < b.N; i++ {
				prover, err := core.NewProver(link, key, core.ProverConfig{
					SetupMem: a.SetupMem(), Speculation: dict,
				})
				if err != nil {
					b.Fatal(err)
				}
				chal, err := attest.NewChallenge(a.Name)
				if err != nil {
					b.Fatal(err)
				}
				reports, stats, err := prover.Attest(chal)
				if err != nil {
					b.Fatal(err)
				}
				verdict, err := core.NewVerifier(link, key, verify.WithSpeculation(dict)).Verify(chal, reports)
				if err != nil || !verdict.OK {
					b.Fatalf("verify: %v %v", err, verdict)
				}
				compressed = stats.CFLogBytes
			}
			b.ReportMetric(float64(stats1.CFLogBytes), "plain_cflog_B")
			b.ReportMetric(float64(compressed), "spec_cflog_B")
			b.ReportMetric(float64(stats1.CFLogBytes)/float64(compressed), "reduction_x")
		})
	}
}

// BenchmarkVerifyEffort compares verifier-side reconstruction effort for
// RAP-Track evidence ((src,dst) packets) vs TRACES evidence (dst-only
// words): source annotations disambiguate sites and shrink the search.
func BenchmarkVerifyEffort(b *testing.B) {
	for _, name := range []string{"crc32", "gps", "bubblesort"} {
		name := name
		b.Run(name, func(b *testing.B) {
			a, err := apps.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			_, reports, link, key, chal := runRAP(b, a, core.DefaultLinkOptions())
			rapVerifier := core.NewVerifier(link, key)
			tout, err := traces.Instrument(a.Build(), traces.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			tres, err := traces.Run(tout, traces.Config{SetupMem: a.SetupMem()})
			if err != nil {
				b.Fatal(err)
			}
			var rapEvals, trEvals float64
			for i := 0; i < b.N; i++ {
				rv, err := rapVerifier.Verify(chal, reports)
				if err != nil || !rv.OK {
					b.Fatalf("rap verify: %v %v", err, rv)
				}
				tv := traces.Verify(tout, tres.Evidence)
				if !tv.OK {
					b.Fatalf("traces verify: %s", tv.Reason)
				}
				rapEvals = float64(rv.Passes)
				trEvals = float64(tv.Evals)
			}
			b.ReportMetric(rapEvals, "rap_evals")
			b.ReportMetric(trEvals, "traces_evals")
			b.ReportMetric(trEvals/rapEvals, "traces/rap_x")
		})
	}
}

// BenchmarkServerThroughput measures end-to-end attestation sessions per
// second through the internal/server gateway over loopback TCP, at rising
// client concurrency, with the verification fast path off and on. One
// session = dial + HELO + (dictionary) + challenge + attested prover run +
// report stream + verification + verdict, so this is the comms-path number
// later PRs must not regress. The engine=interp/engine=automaton pair
// quantifies the compiled verifier-core win on uncached sessions, and the
// cache=on mode the cross-session summary cache + online mining win on top.
func BenchmarkServerThroughput(b *testing.B) {
	const appName = "fibcall"
	a, err := apps.Get(appName)
	if err != nil {
		b.Fatal(err)
	}
	link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		b.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		b.Fatal(err)
	}
	ep := remote.NewProverEndpoint()
	ep.Provision(appName, func() (*core.Prover, error) {
		return core.NewProver(link, key, core.ProverConfig{SetupMem: a.SetupMem()})
	})

	for _, mode := range []struct {
		name string
		opts func(clients int) []server.Option
	}{
		{"engine=interp/cache=off", func(clients int) []server.Option {
			return []server.Option{server.WithSessionSlots(clients), server.WithCache(-1), server.WithMining(-1, 0, 0), server.WithAutomaton(false)}
		}},
		{"engine=automaton/cache=off", func(clients int) []server.Option {
			return []server.Option{server.WithSessionSlots(clients), server.WithCache(-1), server.WithMining(-1, 0, 0)}
		}},
		{"engine=automaton/cache=on", func(clients int) []server.Option {
			return []server.Option{server.WithSessionSlots(clients)}
		}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for _, clients := range []int{1, 4, 16} {
				clients := clients
				b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
					g := server.New(mode.opts(clients)...)
					g.Register(appName, core.NewVerifier(link, key))
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					go func() { _ = g.Serve(ln) }()
					addr := ln.Addr().String()

					b.ResetTimer()
					var wg sync.WaitGroup
					sem := make(chan struct{}, clients)
					errs := make(chan error, b.N)
					for i := 0; i < b.N; i++ {
						wg.Add(1)
						sem <- struct{}{}
						go func() {
							defer wg.Done()
							defer func() { <-sem }()
							// A fresh dial can race the previous session's slot
							// release by a few microseconds; a BUSY shed here is
							// that race, not a result, so redial.
							for {
								conn, err := net.Dial("tcp", addr)
								if err != nil {
									errs <- err
									return
								}
								gv, err := attestApp(ep, conn, appName)
								conn.Close()
								if errors.Is(err, remote.ErrBusy) {
									continue
								}
								if err != nil {
									errs <- err
								} else if !gv.OK {
									errs <- fmt.Errorf("verdict: %s", gv.Reason())
								}
								return
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
					st := g.Snapshot()
					b.ReportMetric(float64(st.CacheHits), "cache_hits")
					b.ReportMetric(float64(st.DictPromotions), "dict_promotions")
					b.ReportMetric(float64(st.AutomatonAccepts), "aut_accepts")
					if err := g.Close(); err != nil {
						b.Fatal(err)
					}
					close(errs)
					for err := range errs {
						b.Fatal(err)
					}
				})
			}
		})
	}
}
