package main

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/linker"
	"raptrack/internal/remote"
	"raptrack/internal/router"
	"raptrack/internal/server"
	"raptrack/internal/speccfa"
)

// appSpec is one provisioned application: golden link artifact plus the
// fleet's shared HMAC key. Linking runs once per app at startup — the
// expensive part — and every simulated device of that app shares it,
// exactly as a firmware image is shared by a device fleet.
type appSpec struct {
	name string
	link *linker.Output
	key  *attest.HMACKey
	app  apps.App
}

func loadApp(name string) (*appSpec, error) {
	a, err := apps.Get(name)
	if err != nil {
		return nil, err
	}
	link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		return nil, fmt.Errorf("linking %s: %w", name, err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		return nil, err
	}
	return &appSpec{name: name, link: link, key: key, app: a}, nil
}

// newShardFactory builds identical gateway replicas serving every app.
func newShardFactory(specs []*appSpec, opts func() []server.Option) func(int) (*server.Gateway, error) {
	return func(int) (*server.Gateway, error) {
		g := server.New(opts()...)
		for _, s := range specs {
			g.Register(s.name, core.NewVerifier(s.link, s.key))
		}
		return g, nil
	}
}

// --- template provers -------------------------------------------------
//
// A fleet simulator cannot afford a full attested execution per session:
// one commodity-CPU core runs the *verifier* side at thousands of
// sessions per second, but a simulated MCU run costs milliseconds of
// host CPU, which would make the load generator — not the plane under
// test — the bottleneck. The RoT's report format makes a cheaper honest
// device possible: reports authenticate (App, Nonce, Seq, Final, loss
// counters, H_MEM, CFLog) individually under the device key, and the
// control-flow evidence of a deterministic firmware run does not depend
// on the challenge nonce. So the simulator records ONE real attested
// run per (app, session-dictionary) — the dictionary changes which
// compressed CFLog bytes ship — and each session replays the recorded
// report chain with the fresh nonce substituted and every report
// re-signed. The gateway sees byte-exact honest evidence and performs
// full authentication, expansion, and verification work per session.

// template is one recorded report chain.
type template struct {
	reports []*attest.Report
}

// templateKey identifies a recording: app plus the session dictionary
// payload hash (empty payload = no DICT frame).
func templateKey(app string, dictPayload []byte) string {
	sum := sha256.Sum256(dictPayload)
	return app + "\x00" + string(sum[:])
}

// templateStore builds and caches templates. A cold (app, dict) pair —
// startup, or the first session after a fleet dictionary epoch — pays
// one real attested run; every other session is clone+re-sign.
type templateStore struct {
	mu    sync.Mutex
	specs map[string]*appSpec
	cache map[string]*template
}

func newTemplateStore(specs []*appSpec) *templateStore {
	m := make(map[string]*appSpec, len(specs))
	for _, s := range specs {
		m[s.name] = s
	}
	return &templateStore{specs: m, cache: make(map[string]*template)}
}

func (ts *templateStore) get(app string, dictPayload []byte) (*template, error) {
	key := templateKey(app, dictPayload)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if tpl, ok := ts.cache[key]; ok {
		return tpl, nil
	}
	spec, ok := ts.specs[app]
	if !ok {
		return nil, fmt.Errorf("fleetsim: no spec for app %q", app)
	}
	tpl, err := record(spec, dictPayload)
	if err != nil {
		return nil, err
	}
	ts.cache[key] = tpl
	return tpl, nil
}

// record runs one real attested execution and keeps the report chain.
func record(spec *appSpec, dictPayload []byte) (*template, error) {
	prover, err := core.NewProver(spec.link, spec.key, core.ProverConfig{
		SetupMem: spec.app.SetupMem(),
		MaxSteps: spec.app.MaxSteps,
	})
	if err != nil {
		return nil, err
	}
	if len(dictPayload) > 0 {
		dict, err := speccfa.DecodeDictionary(dictPayload)
		if err != nil {
			return nil, fmt.Errorf("fleetsim: decoding session dictionary: %w", err)
		}
		if err := prover.Engine.SetSpeculation(dict); err != nil {
			return nil, err
		}
	}
	chal, err := attest.NewChallenge(spec.name)
	if err != nil {
		return nil, err
	}
	reports, _, err := prover.Attest(chal)
	if err != nil {
		return nil, err
	}
	if len(reports) == 0 {
		return nil, errors.New("fleetsim: attested run produced no reports")
	}
	tpl := &template{reports: make([]*attest.Report, 0, len(reports))}
	for _, r := range reports {
		// Decouple from any engine-owned buffers via the codec.
		rr, err := attest.DecodeReport(r.Encode())
		if err != nil {
			return nil, err
		}
		tpl.reports = append(tpl.reports, rr)
	}
	return tpl, nil
}

// attest drives one gateway session on conn using template playback.
func (ts *templateStore) attest(conn io.ReadWriter, app, device string) (remote.GatewayVerdict, error) {
	var gv remote.GatewayVerdict
	if err := remote.WriteFrame(conn, remote.FrameHello, remote.EncodeHelloID(app, device)); err != nil {
		return gv, err
	}
	typ, payload, err := remote.ReadFrame(conn)
	if err != nil {
		return gv, err
	}
	var dictPayload []byte
	if typ == remote.FrameDict {
		dictPayload = payload
		if typ, payload, err = remote.ReadFrame(conn); err != nil {
			return gv, err
		}
	}
	switch typ {
	case remote.FrameChal:
	case remote.FrameBusy:
		ra, _ := remote.ParseBusy(payload)
		return gv, &remote.BusyError{RetryAfter: ra}
	case remote.FrameFail:
		return gv, fmt.Errorf("fleetsim: gateway failed session: %s", payload)
	default:
		return gv, fmt.Errorf("fleetsim: expected challenge, got frame type %d", typ)
	}
	chal, err := attest.DecodeChallenge(payload)
	if err != nil {
		return gv, err
	}
	tpl, err := ts.get(app, dictPayload)
	if err != nil {
		return gv, err
	}
	spec := ts.specs[app]
	for _, r := range tpl.reports {
		rr := *r
		rr.Nonce = chal.Nonce
		rr.Auth = nil
		if err := attest.SignReport(&rr, spec.key); err != nil {
			return gv, err
		}
		if err := remote.WriteFrame(conn, remote.FrameRprt, rr.Encode()); err != nil {
			return gv, err
		}
	}
	typ, payload, err = remote.ReadFrame(conn)
	if err != nil {
		return gv, err
	}
	switch typ {
	case remote.FrameVerdict:
		return remote.DecodeVerdict(payload)
	case remote.FrameFail:
		return gv, fmt.Errorf("fleetsim: gateway failed session: %s", payload)
	default:
		return gv, fmt.Errorf("fleetsim: expected verdict, got frame type %d", typ)
	}
}

// --- simulated device links -------------------------------------------

// slowConn models the device's uplink: every Write pays the link
// latency before bytes move. The gateway session holds its slot while
// waiting — the capacity dynamic that makes horizontal sharding pay on
// a single host: replicas multiply concurrent-session capacity while
// the per-session CPU work stays far below one core.
type slowConn struct {
	net.Conn
	lat time.Duration
}

func (c *slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.lat)
	return c.Conn.Write(p)
}

// device is one simulated prover.
type device struct {
	id        string
	app       string
	latency   time.Duration
	straggler bool
}

// buildFleet deals provers across apps with a deterministic straggler
// share on 4x-latency lossy links.
func buildFleet(n int, specs []*appSpec, baseLat time.Duration, stragglerPct int, rng *rand.Rand) []*device {
	fleet := make([]*device, n)
	for i := range fleet {
		d := &device{
			id:      fmt.Sprintf("device-%06d", i),
			app:     specs[i%len(specs)].name,
			latency: baseLat + time.Duration(rng.Int63n(int64(baseLat))), // [base, 2*base)
		}
		if rng.Intn(100) < stragglerPct {
			d.straggler = true
			d.latency *= 4
		}
		fleet[i] = d
	}
	return fleet
}

// dialRouter opens one in-process session against rt: the router serves
// the gateway end of a pipe while the device speaks on a latency-shaped
// client end.
func dialRouter(rt *router.Router, d *device) (net.Conn, <-chan struct{}) {
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		_ = rt.ServeConn(sc)
		close(done)
	}()
	return &slowConn{Conn: cc, lat: d.latency}, done
}

// sessionResult is one completed device session.
type sessionResult struct {
	ok       bool
	shed     bool // every attempt ended in BUSY
	err      error
	attempts int
	busy     int
	latency  time.Duration // first attempt start -> final outcome
}

// retryProfile shapes a device's retry loop. Backoff grows linearly per
// attempt on top of the gateway's retry-after hint, capped, with a
// deterministic per-device jitter so a thundering herd decorrelates
// without a shared RNG.
type retryProfile struct {
	maxAttempts int
	backoffStep time.Duration // added per prior BUSY attempt
	backoffCap  time.Duration
}

func (p retryProfile) sleep(d *device, attempt int, hint time.Duration) time.Duration {
	// Sanitize the gateway's hint like real device firmware would: on a
	// lossy link a bit flip in the BUSY frame's u32 milliseconds field
	// can ask for a 2^31 ms (= 24-day) pause. The clamp itself lives in
	// remote.ClampBusyHint so every hint consumer shares one ceiling.
	if hint = remote.ClampBusyHint(hint); hint == 0 {
		hint = 5 * time.Millisecond
	}
	back := time.Duration(attempt) * p.backoffStep
	if back > p.backoffCap {
		back = p.backoffCap
	}
	var jitter time.Duration
	if back > 0 {
		h := keyHashJitter(d.id, attempt)
		jitter = time.Duration(h % uint64(back))
	}
	return hint + back/2 + jitter/2
}

// keyHashJitter derives a stable pseudo-random value from (device,
// attempt) without touching a shared RNG.
func keyHashJitter(id string, attempt int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return (h ^ uint64(attempt)) * 1099511628211
}

// runSession attests d against rt with BUSY-aware retry (the template
// path cannot use remote.Client.AttestDial, which builds real provers).
func runSession(rt *router.Router, ts *templateStore, d *device, wrap func(net.Conn) io.ReadWriter, prof retryProfile) sessionResult {
	start := time.Now()
	res := sessionResult{}
	for attempt := 1; attempt <= prof.maxAttempts; attempt++ {
		res.attempts = attempt
		conn, done := dialRouter(rt, d)
		var c io.ReadWriter = conn
		if wrap != nil {
			c = wrap(conn)
		}
		gv, err := ts.attest(c, d.app, d.id)
		conn.Close()
		<-done
		if err == nil {
			res.ok = gv.OK
			res.latency = time.Since(start)
			return res
		}
		var busy *remote.BusyError
		if errors.As(err, &busy) {
			res.busy++
			time.Sleep(prof.sleep(d, attempt, busy.RetryAfter))
			continue
		}
		// Wire faults on straggler links surface as protocol errors;
		// retry a bounded number of times like a real device loop.
		time.Sleep(2 * time.Millisecond)
		res.err = err
	}
	res.shed = res.busy == res.attempts
	res.latency = time.Since(start)
	if res.err == nil && res.busy > 0 {
		res.err = errors.New("fleetsim: retry budget exhausted on BUSY")
	}
	return res
}

// quantiles returns the p50 and p99 of ds (ms) — nil-safe.
func quantiles(ds []time.Duration) (p50, p99 float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	ms := make([]float64, len(ds))
	for i, d := range ds {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sortFloats(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return at(0.50), at(0.99)
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
