// Command fleetsim drives the sharded attestation plane end-to-end with
// a synthetic prover fleet and writes BENCH_fleet.json.
//
// Four phases, each against a fresh topology:
//
//  1. differential — the same session corpus (honest devices plus
//     protocol-error classes) against a bare single gateway and a
//     4-shard router; every gateway->device frame sequence must be
//     bit-identical (the random challenge nonce is the one masked
//     field). The router must be a pure capacity layer.
//  2. scaling — closed-loop load at 1, 2 and 4 shards with a fixed
//     per-replica session-slot budget over latency-shaped device
//     links: aggregate sessions/s must scale with shard count on the
//     same machine (slots x replicas is the capacity unit; per-session
//     CPU stays far below one core).
//  3. wave — the full fleet (>= 10k provers) under a diurnal arrival
//     wave followed by a thundering herd after a simulated firmware
//     push, with straggler devices on slow lossy links, online mining
//     feeding the fleet dictionary bus, and periodic cross-shard cache
//     warming. Reports p50/p99 verdict latency, shed/retry volume,
//     shard balance and dictionary propagation.
//  4. warm probe — quantifies cross-shard verify-cache warming: a
//     verdict computed on one shard short-circuits the same evidence
//     arriving on another shard after a WarmCaches sweep.
//
// The run is seeded; `-smoke` selects the pinned CI profile (finishes
// well under a minute on one core).
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"raptrack/internal/faults"
	"raptrack/internal/obs"
	"raptrack/internal/remote"
	"raptrack/internal/router"
	"raptrack/internal/server"
)

// benchDoc is the BENCH_fleet.json schema.
type benchDoc struct {
	Suite        string          `json:"suite"`
	Seed         uint64          `json:"seed"`
	Smoke        bool            `json:"smoke"`
	Apps         []string        `json:"apps"`
	Provers      int             `json:"provers"`
	ElapsedSec   float64         `json:"elapsed_sec"`
	Differential differentialDoc `json:"differential"`
	Scaling      scalingDoc      `json:"scaling"`
	Wave         waveDoc         `json:"wave"`
	WarmProbe    warmDoc         `json:"warm_probe"`
}

type differentialDoc struct {
	Sessions  int  `json:"sessions"`
	Identical bool `json:"identical"`
	ShardsHit int  `json:"shards_hit"`
}

type legDoc struct {
	Shards         int      `json:"shards"`
	Sessions       int      `json:"sessions"`
	OK             int      `json:"ok"`
	SessionsPerSec float64  `json:"sessions_per_sec"`
	P50Ms          float64  `json:"p50_ms"`
	P99Ms          float64  `json:"p99_ms"`
	ShardSessions  []uint64 `json:"shard_sessions"`
}

type scalingDoc struct {
	SlotsPerShard int      `json:"slots_per_shard"`
	LinkLatencyMs float64  `json:"link_latency_ms"`
	DurationSec   float64  `json:"leg_duration_sec"`
	Legs          []legDoc `json:"legs"`
	Speedup4x     float64  `json:"speedup_4x"`
	Target3xMet   bool     `json:"target_3x_met"`
}

type waveDoc struct {
	Shards         int               `json:"shards"`
	Provers        int               `json:"provers"`
	Stragglers     int               `json:"stragglers"`
	Sessions       int               `json:"sessions"`
	OK             int               `json:"ok"`
	Rejected       int               `json:"rejected"`
	Failed         int               `json:"failed"`
	BusyRetries    int               `json:"busy_retries"`
	GatewaySheds   uint64            `json:"gateway_sheds"`
	ElapsedSec     float64           `json:"elapsed_sec"`
	SessionsPerSec float64           `json:"sessions_per_sec"`
	P50Ms          float64           `json:"p50_ms"`
	P99Ms          float64           `json:"p99_ms"`
	ShardSessions  []uint64          `json:"shard_sessions"`
	BalanceSpread  float64           `json:"balance_max_over_min"`
	DictEpochs     map[string]uint64 `json:"dict_epochs"`
	DictProps      uint64            `json:"dict_propagations"`
	DictLagP99Ms   float64           `json:"dict_lag_p99_ms"`
	WarmSweeps     int               `json:"warm_sweeps"`
	WarmMoved      int               `json:"warm_entries_moved"`
}

type warmDoc struct {
	EntriesMoved int     `json:"entries_moved"`
	Sessions     int     `json:"sessions"`
	HitRate      float64 `json:"hit_rate"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_fleet.json", "output report path")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		appsFlag = flag.String("apps", "prime", "comma-separated workload apps")
		provers  = flag.Int("provers", 10000, "simulated fleet size")
		shards   = flag.Int("shards", 4, "wave-phase shard count")
		slots    = flag.Int("slots", 8, "session slots per shard replica")
		baseLat  = flag.Duration("link-latency", time.Millisecond, "base device uplink latency per write")
		legDur   = flag.Duration("leg-duration", 8*time.Second, "measurement window per scaling leg")
		diurnal  = flag.Duration("diurnal", 12*time.Second, "wave-phase diurnal window")
		herd     = flag.Duration("herd-spread", 4*time.Second, "firmware-push herd arrival spread")
		smoke    = flag.Bool("smoke", false, "pinned CI profile: shorter windows, same fleet size")
	)
	flag.Parse()
	if *smoke {
		*legDur = 2500 * time.Millisecond
		*diurnal = 4 * time.Second
		*herd = 2500 * time.Millisecond
	}

	begin := time.Now()
	names := strings.Split(*appsFlag, ",")
	specs := make([]*appSpec, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		t0 := time.Now()
		s, err := loadApp(n)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, s)
		fmt.Printf("provisioned %-12s (offline link %.1fs)\n", n, time.Since(t0).Seconds())
	}
	ts := newTemplateStore(specs)
	for _, s := range specs {
		t0 := time.Now()
		if _, err := ts.get(s.name, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded  %-12s base template (%.1fs)\n", s.name, time.Since(t0).Seconds())
	}
	rng := rand.New(rand.NewSource(int64(*seed)))
	fleet := buildFleet(*provers, specs, *baseLat, 5, rng)

	doc := benchDoc{
		Suite:   "fleet",
		Seed:    *seed,
		Smoke:   *smoke,
		Apps:    names,
		Provers: len(fleet),
	}

	doc.Differential = runDifferential(specs, ts, fleet)
	doc.Scaling = runScaling(specs, ts, fleet, *slots, *baseLat, *legDur)
	doc.Wave = runWave(specs, ts, fleet, *shards, *slots, *diurnal, *herd, *seed, rng)
	doc.WarmProbe = runWarmProbe(specs, ts, fleet)
	doc.ElapsedSec = round2(time.Since(begin).Seconds())

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%.1fs total)\n", *out, doc.ElapsedSec)
	if !doc.Differential.Identical {
		fmt.Fprintln(os.Stderr, "fleetsim: FAIL: sharded responses diverged from the single gateway")
		os.Exit(1)
	}
	if !doc.Scaling.Target3xMet {
		fmt.Fprintf(os.Stderr, "fleetsim: warning: 4-shard speedup %.2fx below the 3x target\n", doc.Scaling.Speedup4x)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// --- phase 1: differential ---------------------------------------------

// recordConn captures every byte the gateway side sends us.
type recordConn struct {
	io.ReadWriter
	in bytes.Buffer
}

func (r *recordConn) Read(p []byte) (int, error) {
	n, err := r.ReadWriter.Read(p)
	if n > 0 {
		r.in.Write(p[:n])
	}
	return n, err
}

// fingerprint renders the captured gateway->device stream as one token
// per frame, masking only the challenge payload (random nonce).
func fingerprint(raw []byte) []string {
	var out []string
	for i := 0; len(raw)-i >= remote.FrameHeaderSize; {
		typ := raw[i]
		n := int(binary.LittleEndian.Uint32(raw[i+1 : i+5]))
		i += remote.FrameHeaderSize
		if n < 0 || len(raw)-i < n {
			out = append(out, "truncated")
			break
		}
		if typ == remote.FrameChal {
			out = append(out, fmt.Sprintf("chal[%d]", n))
		} else {
			out = append(out, fmt.Sprintf("t%d:%x", typ, raw[i:i+n]))
		}
		i += n
	}
	return out
}

// diffCase is one differential corpus entry: honest template sessions
// or a raw first frame (protocol-error classes).
type diffCase struct {
	dev *device // honest when non-nil
	typ byte    // raw frame otherwise
	raw []byte
}

// play runs the case against one serving function and returns the
// response fingerprint.
func (dc *diffCase) play(ts *templateStore, serve func(net.Conn)) []string {
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() { serve(sc); close(done) }()
	rc := &recordConn{ReadWriter: cc}
	if dc.dev != nil {
		_, _ = ts.attest(rc, dc.dev.app, dc.dev.id)
	} else {
		_ = remote.WriteFrame(rc, dc.typ, dc.raw)
		_, _ = io.Copy(io.Discard, rc)
	}
	cc.Close()
	<-done
	return fingerprint(rc.in.Bytes())
}

func runDifferential(specs []*appSpec, ts *templateStore, fleet []*device) differentialDoc {
	mk := newShardFactory(specs, func() []server.Option {
		return []server.Option{server.WithMining(-1, 0, 0)}
	})
	single, err := mk(0)
	if err != nil {
		fatal(err)
	}
	defer single.Close()
	rt, err := router.New(router.Config{Shards: 4, NewShard: mk})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	cases := make([]*diffCase, 0, 20)
	for i := 0; i < 16 && i < len(fleet); i++ {
		cases = append(cases, &diffCase{dev: fleet[i]})
	}
	cases = append(cases,
		&diffCase{typ: remote.FrameHello, raw: remote.EncodeHelloID("no-such-app", "device-x")},
		&diffCase{typ: remote.FrameHello, raw: []byte{0x01, 'p'}},
		&diffCase{typ: remote.FrameHello, raw: nil},
		&diffCase{typ: remote.FrameChal, raw: []byte("not a hello")},
	)

	shardsHit := map[int]bool{}
	identical := true
	for _, dc := range cases {
		a := dc.play(ts, func(c net.Conn) { _ = single.ServeConn(c) })
		b := dc.play(ts, func(c net.Conn) { _ = rt.ServeConn(c) })
		if fmt.Sprint(a) != fmt.Sprint(b) {
			identical = false
			fmt.Fprintf(os.Stderr, "differential mismatch: single=%v sharded=%v\n", a, b)
		}
		if dc.dev != nil {
			shardsHit[rt.Locate(dc.dev.app, dc.dev.id)] = true
		}
	}
	fmt.Printf("differential: %d sessions, identical=%v, %d shards exercised\n",
		len(cases), identical, len(shardsHit))
	return differentialDoc{Sessions: len(cases), Identical: identical, ShardsHit: len(shardsHit)}
}

// --- phase 2: scaling --------------------------------------------------

// collector aggregates session results across driver goroutines.
type collector struct {
	mu       sync.Mutex
	lats     []time.Duration
	ok       int
	rejected int
	failed   int
	busy     int
}

func (c *collector) add(r sessionResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy += r.busy
	switch {
	case r.err != nil:
		c.failed++
	case r.ok:
		c.ok++
		c.lats = append(c.lats, r.latency)
	default:
		c.rejected++
	}
}

func runScaling(specs []*appSpec, ts *templateStore, fleet []*device, slots int, baseLat, legDur time.Duration) scalingDoc {
	// A capacity benchmark wants steady links: exclude stragglers and
	// cap the rotating corpus so each leg reuses warm verify caches.
	corpus := make([]*device, 0, 4000)
	for _, d := range fleet {
		if !d.straggler {
			corpus = append(corpus, d)
		}
		if len(corpus) == cap(corpus) {
			break
		}
	}
	doc := scalingDoc{
		SlotsPerShard: slots,
		LinkLatencyMs: float64(baseLat) / float64(time.Millisecond),
		DurationSec:   round2(legDur.Seconds()),
	}
	rates := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		leg := runScalingLeg(specs, ts, corpus, n, slots, legDur)
		rates[n] = leg.SessionsPerSec
		doc.Legs = append(doc.Legs, leg)
		fmt.Printf("scaling: %d shard(s) -> %.0f sessions/s (p50 %.1fms p99 %.1fms)\n",
			n, leg.SessionsPerSec, leg.P50Ms, leg.P99Ms)
	}
	if rates[1] > 0 {
		doc.Speedup4x = round2(rates[4] / rates[1])
	}
	doc.Target3xMet = doc.Speedup4x >= 3
	return doc
}

func runScalingLeg(specs []*appSpec, ts *templateStore, corpus []*device, nShards, slots int, dur time.Duration) legDoc {
	mk := newShardFactory(specs, func() []server.Option {
		return []server.Option{
			server.WithMining(-1, 0, 0),
			server.WithSessionSlots(slots),
			server.WithBusyRetryAfter(10 * time.Millisecond),
		}
	})
	rt, err := router.New(router.Config{Shards: nShards, NewShard: mk})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	// Per-shard device queues: each driver set saturates exactly its
	// shard's slot budget, so measured throughput is capacity, not
	// contention between drivers racing for the same replica.
	queues := make([][]*device, nShards)
	for _, d := range corpus {
		s := rt.Locate(d.app, d.id)
		queues[s] = append(queues[s], d)
	}
	prof := retryProfile{maxAttempts: 4, backoffStep: 2 * time.Millisecond, backoffCap: 10 * time.Millisecond}
	coll := &collector{}
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		q := queues[s]
		if len(q) == 0 {
			continue
		}
		var next atomic.Int64
		for w := 0; w < slots; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					d := q[int(next.Add(1)-1)%len(q)]
					coll.add(runSession(rt, ts, d, nil, prof))
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	leg := legDoc{Shards: nShards, Sessions: coll.ok + coll.rejected + coll.failed, OK: coll.ok}
	leg.SessionsPerSec = round2(float64(coll.ok) / elapsed.Seconds())
	leg.P50Ms, leg.P99Ms = quantiles(coll.lats)
	leg.P50Ms, leg.P99Ms = round2(leg.P50Ms), round2(leg.P99Ms)
	for i := 0; i < nShards; i++ {
		leg.ShardSessions = append(leg.ShardSessions, rt.Shard(i).Snapshot().SessionsAccepted)
	}
	return leg
}

// --- phase 3: wave -----------------------------------------------------

type arrival struct {
	at  time.Duration
	dev *device
}

func runWave(specs []*appSpec, ts *templateStore, fleet []*device, nShards, slots int, diurnal, herdSpread time.Duration, seed uint64, rng *rand.Rand) waveDoc {
	mk := newShardFactory(specs, func() []server.Option {
		return []server.Option{
			server.WithMining(32, 8, 32),
			server.WithSessionSlots(slots),
			server.WithBusyRetryAfter(40 * time.Millisecond),
		}
	})
	rt, err := router.New(router.Config{Shards: nShards, NewShard: mk})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	// Arrival schedule: a sin^2-shaped diurnal window in which a fifth
	// of the fleet checks in, then the firmware push — every device
	// re-attests within the herd spread.
	sched := make([]arrival, 0, len(fleet)+len(fleet)/5)
	for i, d := range fleet {
		if i%5 == 0 {
			for {
				x := rng.Float64()
				s := math.Sin(math.Pi * x)
				if rng.Float64() < s*s {
					sched = append(sched, arrival{time.Duration(float64(diurnal) * x), d})
					break
				}
			}
		}
		sched = append(sched, arrival{diurnal + time.Duration(rng.Int63n(int64(herdSpread))), d})
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].at < sched[j].at })

	// Stragglers speak over lossy links: a per-device forked injector
	// keeps the fault schedule deterministic under concurrency.
	master := faults.New(seed, faults.Plan{WriteFlip: 0.002, ReadFlip: 0.001})
	wrapFor := func(d *device) func(net.Conn) io.ReadWriter {
		if !d.straggler {
			return nil
		}
		inj := master.Fork(d.id)
		return func(c net.Conn) io.ReadWriter { return inj.WrapConn(c) }
	}

	// Periodic cross-shard cache warming while the wave runs.
	sweepStop := make(chan struct{})
	var sweeps, swept int
	var sweepMu sync.Mutex
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sweepStop:
				return
			case <-tick.C:
				n := rt.WarmCaches(8)
				sweepMu.Lock()
				sweeps++
				swept += n
				sweepMu.Unlock()
			}
		}
	}()

	prof := retryProfile{maxAttempts: 150, backoffStep: 30 * time.Millisecond, backoffCap: 1200 * time.Millisecond}
	coll := &collector{}
	stragglers := 0
	for _, d := range fleet {
		if d.straggler {
			stragglers++
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, a := range sched {
		if wait := a.at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(d *device) {
			defer wg.Done()
			coll.add(runSession(rt, ts, d, wrapFor(d), prof))
		}(a.dev)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(sweepStop)

	doc := waveDoc{
		Shards:      nShards,
		Provers:     len(fleet),
		Stragglers:  stragglers,
		Sessions:    len(sched),
		OK:          coll.ok,
		Rejected:    coll.rejected,
		Failed:      coll.failed,
		BusyRetries: coll.busy,
		ElapsedSec:  round2(elapsed.Seconds()),
	}
	doc.SessionsPerSec = round2(float64(coll.ok) / elapsed.Seconds())
	doc.P50Ms, doc.P99Ms = quantiles(coll.lats)
	doc.P50Ms, doc.P99Ms = round2(doc.P50Ms), round2(doc.P99Ms)
	var minS, maxS uint64
	for i := 0; i < nShards; i++ {
		n := rt.Shard(i).Snapshot().SessionsAccepted
		doc.ShardSessions = append(doc.ShardSessions, n)
		if i == 0 || n < minS {
			minS = n
		}
		if n > maxS {
			maxS = n
		}
	}
	if minS > 0 {
		doc.BalanceSpread = round2(float64(maxS) / float64(minS))
	}
	doc.GatewaySheds = rt.Snapshot().SessionsRejected
	props, epochs, lag := rt.DictPropagation()
	doc.DictProps = props
	doc.DictEpochs = epochs
	doc.DictLagP99Ms = round2(histP99(lag) * 1000)
	sweepMu.Lock()
	doc.WarmSweeps, doc.WarmMoved = sweeps, swept
	sweepMu.Unlock()
	fmt.Printf("wave: %d sessions over %d provers in %.1fs -> %d ok, %d rejected, %d failed; %d busy retries, %d gateway sheds; dict epochs %v\n",
		doc.Sessions, doc.Provers, doc.ElapsedSec, doc.OK, doc.Rejected, doc.Failed, doc.BusyRetries, doc.GatewaySheds, doc.DictEpochs)
	return doc
}

// histP99 returns the p99 upper bucket bound in seconds (the last
// finite bound if the quantile lands in the overflow bucket).
func histP99(s obs.HistogramSnapshot) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := uint64(math.Ceil(0.99 * float64(total)))
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// --- phase 4: warm probe -----------------------------------------------

func runWarmProbe(specs []*appSpec, ts *templateStore, fleet []*device) warmDoc {
	mk := newShardFactory(specs, func() []server.Option {
		return []server.Option{server.WithMining(-1, 0, 0)}
	})
	rt, err := router.New(router.Config{Shards: 2, NewShard: mk})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	app := specs[0].name
	pinned := func(shard, n int) []*device {
		var out []*device
		for _, d := range fleet {
			if d.app == app && rt.Locate(d.app, d.id) == shard {
				out = append(out, d)
				if len(out) == n {
					break
				}
			}
		}
		return out
	}
	prof := retryProfile{maxAttempts: 3, backoffStep: 5 * time.Millisecond, backoffCap: 20 * time.Millisecond}
	seeders, probes := pinned(0, 1), pinned(1, 16)
	if len(seeders) == 0 || len(probes) == 0 {
		return warmDoc{}
	}
	runSession(rt, ts, seeders[0], nil, prof)
	moved := rt.WarmCaches(0)
	before := rt.Shard(1).Snapshot().CacheHits
	ok := 0
	for _, d := range probes {
		if runSession(rt, ts, d, nil, prof).ok {
			ok++
		}
	}
	hits := rt.Shard(1).Snapshot().CacheHits - before
	doc := warmDoc{EntriesMoved: moved, Sessions: len(probes)}
	if len(probes) > 0 {
		doc.HitRate = round2(float64(hits) / float64(len(probes)))
	}
	fmt.Printf("warm probe: %d entries moved, %d/%d probe sessions hit warm cache\n", moved, hits, len(probes))
	return doc
}
