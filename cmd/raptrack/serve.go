package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/faults"
	"raptrack/internal/journal"
	"raptrack/internal/linker"
	"raptrack/internal/obs"
	"raptrack/internal/remote"
	"raptrack/internal/router"
	"raptrack/internal/server"
)

// servePlane is what the serve loop needs from either topology: a bare
// gateway (-shards 1) or the consistent-hash router fronting N replicas.
type servePlane interface {
	Serve(net.Listener) error
	Close() error
	Snapshot() server.Stats
}

// cmdServe runs the concurrent attestation gateway: it provisions a
// shared Verifier per workload, serves prover sessions on a TCP listener,
// and prints the stats snapshot on shutdown. With -admin it additionally
// serves the observability endpoint (Prometheus /metrics, JSON
// /debug/sessions, pprof) on a second listener. With -selftest N it
// instead drives N concurrent in-process prover clients through the
// listener and exits — a one-command load check of the whole networking
// path.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7421", "listen address")
	shards := fs.Int("shards", 1, "gateway replicas behind the consistent-hash session router (1: single gateway)")
	adminAddr := fs.String("admin", "", "admin endpoint address (/metrics, /debug/sessions, pprof; empty: off)")
	metricsOut := fs.String("metrics-out", "", "write a final /metrics scrape to this file on shutdown (atomically; also snapshotted every -metrics-interval)")
	metricsInterval := fs.Duration("metrics-interval", 30*time.Second, "periodic -metrics-out snapshot period (0: final scrape only)")
	journalDir := fs.String("journal", "", "durable evidence plane: journal every verdict and dictionary version under this directory (empty: off)")
	journalFsync := fs.String("journal-fsync", "each", "journal durability policy: each (group commit), interval, never")
	journalSegBytes := fs.Int64("journal-segment-bytes", 0, "journal segment rotation size (0: 1 MiB default)")
	traceRing := fs.Int("trace-ring", 0, "session traces kept per app for /debug/sessions (0: default 64)")
	appList := fs.String("apps", "", "comma-separated workloads to serve (default: all)")
	maxSessions := fs.Int("max-sessions", 64, "concurrent session cap (beyond: BUSY shed)")
	workers := fs.Int("workers", 0, "verification worker pool size (0: GOMAXPROCS)")
	sessionTimeout := fs.Duration("session-timeout", 30*time.Second, "whole-session deadline")
	ioTimeout := fs.Duration("io-timeout", 10*time.Second, "per-read/write deadline")
	cacheBytes := fs.Int64("cache-bytes", 0, "verification cache budget in bytes (0: 64 MiB default, negative: off)")
	mineEvery := fs.Int("mine-every", 0, "mine the dictionary every Nth accepted session (0: default 16, negative: off)")
	minePaths := fs.Int("mine-paths", 0, "sub-paths to mine per pass (0: default 8)")
	maxDictPaths := fs.Int("max-dict-paths", 0, "live dictionary size cap (0: default 32)")
	busyRetryAfter := fs.Duration("busy-retry-after", 0, "retry-after hint carried in BUSY sheds (0: no hint)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive verify errors before the per-app breaker opens (0: default 8, negative: off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker shed window before a half-open probe (0: default 2s)")
	automaton := fs.Bool("automaton", true, "decode accepts with the compiled table-driven verifier core (false: interpreter only)")
	selftest := fs.Int("selftest", 0, "drive N concurrent local prover sessions, print stats, exit")
	watermark := fs.Int("watermark", 0, "MTB watermark for selftest provers (0: buffer size)")
	verbose := fs.Bool("v", false, "log per-session failures")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var names []string
	if *appList == "" {
		for _, a := range apps.All() {
			names = append(names, a.Name)
		}
	} else {
		names = strings.Split(*appList, ",")
	}

	// One observer binds the gateway's registry and trace rings to the
	// admin endpoint and the shutdown scrape. A zero-plan fault injector
	// registers alongside so the injected-fault families are always
	// present (and provably zero) on production scrapes.
	observer := obs.NewObserver(nil, *traceRing)
	faults.New(0, faults.Plan{}).RegisterMetrics(observer.Registry())

	var jnl *journal.Journal
	if *journalDir != "" {
		var policy journal.FsyncPolicy
		switch *journalFsync {
		case "each":
			policy = journal.SyncEach
		case "interval":
			policy = journal.SyncInterval
		case "never":
			policy = journal.SyncNever
		default:
			return fmt.Errorf("unknown -journal-fsync policy %q (each, interval, never)", *journalFsync)
		}
		var err error
		jnl, err = journal.Open(*journalDir, journal.Options{
			Fsync:        policy,
			SegmentBytes: *journalSegBytes,
		})
		if err != nil {
			return fmt.Errorf("opening journal: %w", err)
		}
		defer jnl.Close()
		jnl.RegisterMetrics(observer.Registry())
		c := jnl.Counters()
		fmt.Printf("journal at %s (recovered %d records, next seq %d)\n",
			*journalDir, c.Recovered, jnl.NextSeq())
	}

	// One golden artifact, key, and shared Verifier per app — provisioned
	// once and shared by every replica (a firmware image is fleet
	// property). The key would normally come from device provisioning;
	// the demo gateway generates fresh ones and hands them to its
	// selftest provers.
	type provApp struct {
		name string
		link *linker.Output
		key  *attest.HMACKey
	}
	ep := remote.NewProverEndpoint()
	var provs []provApp
	for _, name := range names {
		name := strings.TrimSpace(name)
		a, err := apps.Get(name)
		if err != nil {
			return err
		}
		link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return fmt.Errorf("linking %s: %w", name, err)
		}
		key, err := appKey(*journalDir, name)
		if err != nil {
			return err
		}
		provs = append(provs, provApp{name: name, link: link, key: key})
		app := a
		ep.Provision(name, func() (*core.Prover, error) {
			return core.NewProver(link, key, core.ProverConfig{
				SetupMem:  app.SetupMem(),
				Watermark: *watermark,
			})
		})
		hmem := link.Image.Hash()
		fmt.Printf("provisioned %-12s (H_MEM %x...)\n", name, hmem[:8])
	}

	buildOpts := func(o *obs.Observer) []server.Option {
		opts := []server.Option{
			server.WithSessionSlots(*maxSessions),
			server.WithVerifyWorkers(*workers, 0),
			server.WithTimeouts(*sessionTimeout, *ioTimeout),
			server.WithCache(*cacheBytes),
			server.WithMining(*mineEvery, *minePaths, *maxDictPaths),
			server.WithBusyRetryAfter(*busyRetryAfter),
			server.WithBreaker(*breakerThreshold, *breakerCooldown),
			server.WithAutomaton(*automaton),
			server.WithObserver(o),
		}
		if jnl != nil {
			opts = append(opts, server.WithJournal(jnl))
		}
		if *verbose {
			opts = append(opts, server.WithSessionErrorHandler(func(addr string, err error) {
				fmt.Fprintf(os.Stderr, "session %s: %v\n", addr, err)
			}))
		}
		return opts
	}

	// The serving plane: a bare gateway, or the router over N replicas.
	// Sharded mode gives each replica its own observer (metric names
	// collide on a shared registry) and mounts the composite exposition —
	// router families unlabeled, every shard's families under shard="i" —
	// over the admin /metrics route; `observer` then carries only the
	// process-level families (router, faults, journal).
	var (
		plane      servePlane
		gw0        *server.Gateway // retry attribution target for -selftest
		rt         *router.Router
		adminOpts  []obs.AdminOption
		renderExpo func(io.Writer) error
	)
	if *shards <= 1 {
		g := server.New(buildOpts(observer)...)
		for _, p := range provs {
			g.Register(p.name, core.NewVerifier(p.link, p.key))
		}
		plane, gw0 = g, g
		renderExpo = observer.Registry().WritePrometheus
	} else {
		var err error
		rt, err = router.New(router.Config{
			Shards:       *shards,
			MaxDictPaths: *maxDictPaths,
			RetryAfter:   *busyRetryAfter,
			Registry:     observer.Registry(),
			NewShard: func(int) (*server.Gateway, error) {
				g := server.New(buildOpts(obs.NewObserver(nil, *traceRing))...)
				for _, p := range provs {
					g.Register(p.name, core.NewVerifier(p.link, p.key))
				}
				return g, nil
			},
		})
		if err != nil {
			return err
		}
		plane, gw0 = rt, rt.Shard(0)
		renderExpo = rt.WriteMetrics
		adminOpts = append(adminOpts, obs.WithRoute("/metrics", rt.MetricsHandler()))
		for i := 0; i < rt.Shards(); i++ {
			adminOpts = append(adminOpts, obs.WithHealth(fmt.Sprintf("shard-%d", i), rt.HealthProbe(i)))
		}
	}
	defer plane.Close()

	var adminSrv *http.Server
	var adminURL string
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		adminURL = "http://" + aln.Addr().String()
		if jnl != nil {
			adminOpts = append(adminOpts,
				obs.WithHealth("journal", func() obs.HealthStatus {
					ok, detail := jnl.Health()
					if ok {
						return obs.HealthStatus{Level: obs.HealthOK, Detail: detail}
					}
					// Degraded, never down: an evidence plane shedding to
					// memory must not get the gateway restart-looped.
					return obs.HealthStatus{Level: obs.HealthDegraded, Detail: detail}
				}),
				obs.WithRoute("/debug/journal", journal.AuditHandler(jnl)),
			)
		}
		adminSrv = &http.Server{Handler: obs.AdminHandler(observer, adminOpts...)}
		go func() { _ = adminSrv.Serve(aln) }()
		fmt.Printf("admin endpoint on %s (/metrics, /debug/sessions, /debug/pprof)\n", aln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- plane.Serve(ln) }()
	if rt != nil {
		fmt.Printf("router listening on %s (%d apps, %d shards x %d slots)\n", ln.Addr(), len(names), rt.Shards(), *maxSessions)
	} else {
		fmt.Printf("gateway listening on %s (%d apps, %d slots)\n", ln.Addr(), len(names), *maxSessions)
	}

	// Periodic -metrics-out snapshots: a killed gateway loses at most one
	// interval of metrics, and each snapshot is atomic, so the file on
	// disk is always one complete exposition.
	var snapStop chan struct{}
	var snapDone chan struct{}
	if *metricsOut != "" && *metricsInterval > 0 {
		snapStop, snapDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(snapDone)
			t := time.NewTicker(*metricsInterval)
			defer t.Stop()
			for {
				select {
				case <-snapStop:
					return
				case <-t.C:
					_ = writeMetrics(*metricsOut, adminURL, renderExpo)
				}
			}
		}()
	}

	if *selftest > 0 {
		if err := runSelftest(gw0, ep, ln.Addr().String(), names, *selftest); err != nil {
			return err
		}
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case s := <-sig:
			fmt.Printf("\n%v: shutting down\n", s)
		case err := <-serveErr:
			if err != nil {
				return err
			}
		}
	}

	// Drain before reading anything: in-flight sessions and queued verify
	// jobs land in the registry only once Close returns, so the snapshot
	// (and the selftest's latency line) reflects every session.
	if err := plane.Close(); err != nil {
		return err
	}
	snap := plane.Snapshot()
	fmt.Print(snap)
	if *selftest > 0 && snap.Verifications > 0 {
		fmt.Printf("selftest: verify latency avg %v over %d verifications\n",
			(snap.VerifyTotal / time.Duration(snap.Verifications)).Round(time.Microsecond),
			snap.Verifications)
	}

	if snapStop != nil {
		close(snapStop)
		<-snapDone
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, adminURL, renderExpo); err != nil {
			return err
		}
		fmt.Printf("metrics written:   %s\n", *metricsOut)
	}
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = adminSrv.Shutdown(ctx)
	}
	return nil
}

// appKey returns the app's attestation key. Without a journal the demo
// gateway generates a fresh key per run; with one, the key persists
// under <journalDir>/keys/ so a later `raptrack replay` can re-verify
// the journaled evidence — HMAC report chains are only checkable with
// the key the device signed with.
func appKey(journalDir, app string) (*attest.HMACKey, error) {
	if journalDir == "" {
		return attest.GenerateHMACKey()
	}
	path := filepath.Join(journalDir, "keys", app+".key")
	if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
		return attest.NewHMACKey(raw), nil
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return nil, fmt.Errorf("journal key store: %w", err)
	}
	if err := journal.WriteFileAtomic(nil, path, key.Key(), 0o600); err != nil {
		return nil, err
	}
	return key, nil
}

// writeMetrics persists one exposition scrape atomically (temp-file +
// rename: a reader or a crash never sees a torn exposition). When the
// admin endpoint is up the scrape goes through a real HTTP GET — proving
// the served bytes, not just the registry — and falls back to the render
// callback otherwise (the bare registry when single, the router's
// composite exposition when sharded).
func writeMetrics(path, adminURL string, render func(io.Writer) error) error {
	if adminURL != "" {
		resp, err := http.Get(adminURL + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return journal.WriteFileAtomic(nil, path, body, 0o644)
			}
		}
	}
	var buf strings.Builder
	if err := render(&buf); err != nil {
		return err
	}
	return journal.WriteFileAtomic(nil, path, []byte(buf.String()), 0o644)
}

// runSelftest dials n concurrent prover sessions (round-robin over the
// provisioned apps) into the gateway's own listener. A sequential warmup
// session per app runs first so the concurrent batch exercises the fast
// path: warmed verdict/segment caches and a freshly mined dictionary.
func runSelftest(g *server.Gateway, ep *remote.ProverEndpoint, addr string, names []string, n int) error {
	fmt.Printf("selftest: warmup round over %d apps\n", len(names))
	for _, app := range names {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("warmup %s: dial: %w", app, err)
		}
		gv, err := remote.NewClient(ep).Attest(conn, app)
		conn.Close()
		if err != nil {
			return fmt.Errorf("warmup %s: %w", app, err)
		}
		if !gv.OK {
			return fmt.Errorf("warmup %s: verdict REJECTED: %s", app, gv.Reason())
		}
	}

	// The concurrent batch attests through the production retry loop, so a
	// BUSY shed (session cap or an open breaker) backs off and retries
	// instead of failing the selftest; retry totals land in the gateway
	// stats via ObserveProverRetries.
	fmt.Printf("selftest: %d concurrent prover sessions\n", n)
	start := time.Now()
	var wg sync.WaitGroup
	var retries atomic.Uint64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app := names[i%len(names)]
			dial := func() (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) }
			gv, st, err := remote.NewClient(ep, remote.WithRetry(remote.RetryPolicy{})).AttestDial(app, dial)
			retries.Add(uint64(st.Retries))
			if err != nil {
				errs <- fmt.Errorf("session %d (%s): %w", i, app, err)
				return
			}
			if !gv.OK {
				errs <- fmt.Errorf("session %d (%s): verdict REJECTED: %s", i, app, gv.Reason())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	g.ObserveProverRetries(retries.Load())
	failed := 0
	for err := range errs {
		failed++
		fmt.Fprintln(os.Stderr, "selftest:", err)
	}
	fmt.Printf("selftest: %d/%d sessions ok in %v (%d retries)\n",
		n-failed, n, time.Since(start).Round(time.Millisecond), retries.Load())
	if failed > 0 {
		return fmt.Errorf("selftest: %d sessions failed", failed)
	}
	return nil
}
