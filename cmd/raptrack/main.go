// Command raptrack is the developer CLI for the RAP-Track reproduction:
// it runs the offline phase, executes workloads under any of the four
// systems, performs full attestation round trips, and disassembles
// images.
//
// Usage:
//
//	raptrack list
//	raptrack link   -app <name> | -file prog.s  [-nopad N] [-noloopopt] [-disasm]
//	raptrack run    -app <name> | -file prog.s  [-mode plain|naive|rap|traces]
//	raptrack attest -app <name> | -file prog.s  [-watermark N] [-path N]
//	                [-out evidence.bin] [-keyout key.bin]
//	raptrack verify -app <name> | -file prog.s  -in evidence.bin -key key.bin [-nonce hex]
//	raptrack disasm -app <name> | -file prog.s  [-linked]
//	raptrack serve  [-addr host:port] [-apps a,b] [-max-sessions N] [-workers N]
//	                [-session-timeout D] [-io-timeout D] [-selftest N] [-v]
//	                [-admin host:port] [-metrics-out FILE] [-trace-ring N]
//	                [-journal DIR] [-journal-fsync each|interval|never]
//	raptrack replay -journal DIR [-from N] [-to N] [-automaton=false] [-v]
//
// -file loads textual assembly (see internal/asm: Parse) with the full
// synthetic peripheral set mapped.
package main

import (
	"flag"
	"fmt"
	"os"

	"raptrack/internal/apps"
	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/baseline/naive"
	"raptrack/internal/baseline/traces"
	"raptrack/internal/cfg"
	"raptrack/internal/core"
	"raptrack/internal/mem"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "link":
		err = cmdLink(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "attest":
		err = cmdAttest(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "raptrack:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: raptrack <list|link|run|attest|verify|disasm|serve|replay> [flags]`)
}

// loadTarget resolves -app or -file into a runnable workload.
func loadTarget(app, file string) (apps.App, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return apps.App{}, err
		}
		return apps.FromSource(file, string(src))
	}
	return apps.Get(app)
}

func cmdList() error {
	for _, a := range apps.All() {
		fmt.Printf("%-12s %s\n", a.Name, a.Description)
	}
	return nil
}

func cmdLink(args []string) error {
	fs := flag.NewFlagSet("link", flag.ExitOnError)
	app := fs.String("app", "", "workload name (see 'raptrack list')")
	file := fs.String("file", "", "assembly source file")
	nopad := fs.Int("nopad", 2, "NOPs per MTBAR stub")
	noLoopOpt := fs.Bool("noloopopt", false, "disable the simple-loop optimization")
	disasm := fs.Bool("disasm", false, "dump the linked image")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := loadTarget(*app, *file)
	if err != nil {
		return err
	}
	opts := core.DefaultLinkOptions()
	opts.NopPad = *nopad
	if *noLoopOpt {
		opts.LoopOpt = false
	}
	out, err := core.LinkForCFA(a.Build(), opts)
	if err != nil {
		return err
	}
	st := out.Stats
	fmt.Printf("app:            %s\n", a.Name)
	fmt.Printf("code size:      %d -> %d bytes (+%d)\n", st.CodeBefore, st.CodeAfter, st.CodeAfter-st.CodeBefore)
	fmt.Printf("MTBAR:          [%#x, %#x) (%d bytes)\n", out.MTBAR.Base, out.MTBAR.Limit, out.MTBAR.Limit-out.MTBAR.Base)
	fmt.Printf("MTBDR:          [%#x, %#x)\n", out.MTBDR.Base, out.MTBDR.Limit)
	fmt.Printf("stubs:          %d total\n", st.Stubs)
	for _, c := range []cfg.Class{cfg.ClassIndirectCall, cfg.ClassIndirectJump, cfg.ClassReturn,
		cfg.ClassCondNonLoop, cfg.ClassCondLoopBack, cfg.ClassCondLoopFwd} {
		if n := st.StubsByClass[c]; n > 0 {
			fmt.Printf("  %-13s %d\n", c.String()+":", n)
		}
	}
	fmt.Printf("logged loops:   %d\n", st.OptimizedLoops)
	fmt.Printf("static loops:   %d\n", st.StaticLoops)
	fmt.Printf("H_MEM:          %x\n", out.Image.Hash())
	if *disasm {
		fmt.Println()
		fmt.Print(out.Image.Dump())
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	app := fs.String("app", "", "workload name")
	file := fs.String("file", "", "assembly source file")
	mode := fs.String("mode", "plain", "plain, naive, rap or traces")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := loadTarget(*app, *file)
	if err != nil {
		return err
	}
	switch *mode {
	case "plain":
		c, dev, err := apps.RunPlain(a)
		if err != nil {
			return err
		}
		fmt.Printf("cycles: %d, instructions: %d, transfers: %d\n", c.Cycles, c.Steps, c.TotalBranches())
		printHost(dev)
	case "naive":
		res, err := naive.Run(a.Build(), naive.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
		if err != nil {
			return err
		}
		fmt.Printf("cycles: %d, transfers: %d, CFLog: %d bytes, partials: %d\n",
			res.Cycles, res.Transfers, res.CFLogBytes, res.Partials)
	case "rap":
		out, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return err
		}
		key, err := attest.GenerateHMACKey()
		if err != nil {
			return err
		}
		var dev *apps.Devices
		prover, err := core.NewProver(out, key, core.ProverConfig{
			SetupMem: func(m *mem.Memory) {
				if a.Setup != nil {
					dev = a.Setup(m)
				}
			},
			MaxSteps: a.MaxSteps,
		})
		if err != nil {
			return err
		}
		chal, err := attest.NewChallenge(a.Name)
		if err != nil {
			return err
		}
		_, stats, err := prover.Attest(chal)
		if err != nil {
			return err
		}
		fmt.Printf("cycles: %d, CFLog: %d bytes, packets: %d, secalls: %d, partials: %d\n",
			stats.Cycles, stats.CFLogBytes, stats.Packets, stats.SecureCalls, stats.Partials)
		printHost(dev)
	case "traces":
		out, err := traces.Instrument(a.Build(), traces.DefaultOptions())
		if err != nil {
			return err
		}
		res, err := traces.Run(out, traces.Config{SetupMem: a.SetupMem(), MaxSteps: a.MaxSteps})
		if err != nil {
			return err
		}
		fmt.Printf("cycles: %d, CFLog: %d bytes, entries: %d, secalls: %d, partials: %d\n",
			res.Cycles, res.CFLogBytes, res.Entries, res.SecureCalls, res.Partials)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func printHost(dev *apps.Devices) {
	if dev != nil && dev.Host != nil && len(dev.Host.Words) > 0 {
		fmt.Printf("host output: %v\n", dev.Host.Words)
	}
}

func cmdAttest(args []string) error {
	fs := flag.NewFlagSet("attest", flag.ExitOnError)
	app := fs.String("app", "", "workload name")
	file := fs.String("file", "", "assembly source file")
	watermark := fs.Int("watermark", 0, "MTB_FLOW watermark in bytes (0: buffer size)")
	pathN := fs.Int("path", 8, "reconstructed path edges to print")
	outFile := fs.String("out", "", "write the evidence file (challenge + report chain)")
	keyout := fs.String("keyout", "", "write the HMAC key for later 'raptrack verify'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := loadTarget(*app, *file)
	if err != nil {
		return err
	}
	out, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		return err
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		return err
	}
	prover, err := core.NewProver(out, key, core.ProverConfig{
		SetupMem:  a.SetupMem(),
		MaxSteps:  a.MaxSteps,
		Watermark: *watermark,
	})
	if err != nil {
		return err
	}
	chal, err := attest.NewChallenge(a.Name)
	if err != nil {
		return err
	}
	reports, stats, err := prover.Attest(chal)
	if err != nil {
		return err
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, attest.EncodeEvidence(chal, reports), 0o644); err != nil {
			return err
		}
		fmt.Printf("evidence written:  %s\n", *outFile)
	}
	if *keyout != "" {
		if err := os.WriteFile(*keyout, key.Key(), 0o600); err != nil {
			return err
		}
		fmt.Printf("key written:       %s\n", *keyout)
	}
	fmt.Printf("challenge nonce: %x\n", chal.Nonce)
	fmt.Printf("reports:         %d (%d partial)\n", len(reports), stats.Partials)
	fmt.Printf("evidence:        %d bytes, %d packets\n", stats.CFLogBytes, stats.Packets)
	fmt.Printf("app cycles:      %d (+%d engine setup, +%d report pauses)\n",
		stats.Cycles, stats.SetupCycles, stats.PauseCycles)

	verdict, err := core.NewVerifier(out, key).Verify(chal, reports)
	if err != nil {
		return err
	}
	if verdict.OK {
		fmt.Printf("verdict:         ACCEPTED (%d transfers reconstructed, %d loops replayed)\n",
			verdict.Transfers, verdict.LoopsReplayed)
	} else {
		fmt.Printf("verdict:         REJECTED: %s (pc=%#x)\n", verdict.Reason(), verdict.FailPC)
	}
	for i, e := range verdict.Path {
		if i >= *pathN {
			fmt.Printf("  ... %d more transfers\n", verdict.Transfers-uint64(i))
			break
		}
		fmt.Printf("  %#08x -> %#08x (%s)\n", e.Src, e.Dst, e.Kind)
	}
	return nil
}

// cmdVerify performs offline verification of a persisted evidence file:
// the golden artifact is rebuilt deterministically from the same program.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	app := fs.String("app", "", "workload name")
	file := fs.String("file", "", "assembly source file")
	in := fs.String("in", "", "evidence file from 'raptrack attest -out'")
	keyFile := fs.String("key", "", "HMAC key file from 'raptrack attest -keyout'")
	pathN := fs.Int("path", 8, "reconstructed path edges to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *keyFile == "" {
		return fmt.Errorf("verify needs -in and -key")
	}
	a, err := loadTarget(*app, *file)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	chal, reports, err := attest.DecodeEvidence(raw)
	if err != nil {
		return err
	}
	keyRaw, err := os.ReadFile(*keyFile)
	if err != nil {
		return err
	}
	key := attest.NewHMACKey(keyRaw)

	out, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
	if err != nil {
		return err
	}
	verdict, err := core.NewVerifier(out, key).Verify(chal, reports)
	if err != nil {
		return fmt.Errorf("malformed or inauthentic evidence: %w", err)
	}
	fmt.Printf("challenge nonce: %x\n", chal.Nonce)
	fmt.Printf("reports:         %d\n", len(reports))
	if verdict.OK {
		fmt.Printf("verdict:         ACCEPTED (%d transfers, %d loops replayed, %d packets)\n",
			verdict.Transfers, verdict.LoopsReplayed, verdict.Packets)
	} else {
		fmt.Printf("verdict:         REJECTED: %s (pc=%#x)\n", verdict.Reason(), verdict.FailPC)
	}
	for i, e := range verdict.Path {
		if i >= *pathN {
			fmt.Printf("  ... %d more transfers\n", verdict.Transfers-uint64(i))
			break
		}
		fmt.Printf("  %#08x -> %#08x (%s)\n", e.Src, e.Dst, e.Kind)
	}
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	app := fs.String("app", "", "workload name")
	file := fs.String("file", "", "assembly source file")
	linked := fs.Bool("linked", false, "disassemble the RAP-Track-linked image instead of the original")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := loadTarget(*app, *file)
	if err != nil {
		return err
	}
	if *linked {
		out, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return err
		}
		fmt.Print(out.Image.Dump())
		return nil
	}
	img, err := asm.Layout(a.Build(), mem.NSCodeBase)
	if err != nil {
		return err
	}
	fmt.Print(img.Dump())
	return nil
}
