package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/journal"
	"raptrack/internal/speccfa"
	"raptrack/internal/verify"
)

// cmdReplay re-verifies a journaled evidence range bit-for-bit: it
// validates the journal's hash chain, rebuilds each app's verifier from
// the same deterministic golden artifact (and the persisted attestation
// key), expands every session with exactly the dictionary version its
// prover compressed with, and diffs the fresh verdicts against the
// journaled ones. Any chain break or verdict diff is a non-zero exit —
// either the evidence plane was tampered with, or a verifier change
// altered a decision it should not have.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	dir := fs.String("journal", "", "journal directory written by 'raptrack serve -journal'")
	from := fs.Uint64("from", 0, "first sequence number to replay (0: start of journal)")
	to := fs.Uint64("to", 0, "last sequence number to replay (0: end of journal)")
	automaton := fs.Bool("automaton", true, "replay through the compiled verifier core (false: interpreter only)")
	verbose := fs.Bool("v", false, "print every replayed record, not just diffs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("replay needs -journal DIR")
	}

	report, err := journal.ScanDir(nil, *dir)
	if err != nil {
		return err
	}
	if report.Torn != nil {
		// A torn tail is a crash artifact: the partial record was never
		// acknowledged durable, so it is noted, not failed on.
		fmt.Printf("note: torn tail in %s at offset %d (unacknowledged partial record)\n",
			report.Torn.Segment, report.Torn.Offset)
	}
	fmt.Printf("journal: %d records across %d segments, chain verified\n",
		len(report.Records), report.Segments)

	// Verifiers are rebuilt, not restored: the golden artifact comes from
	// the same deterministic link the serving gateway used, and the HMAC
	// key from the journal's key store.
	verifiers := make(map[string]*verify.Verifier)
	dicts := make(map[string]map[uint64]*speccfa.Dictionary)
	auts := make(map[string]map[uint64]*verify.Automaton)
	getVerifier := func(app string) (*verify.Verifier, error) {
		if v, ok := verifiers[app]; ok {
			return v, nil
		}
		a, err := apps.Get(app)
		if err != nil {
			return nil, fmt.Errorf("journaled app %q: %w", app, err)
		}
		link, err := core.LinkForCFA(a.Build(), core.DefaultLinkOptions())
		if err != nil {
			return nil, fmt.Errorf("linking %s: %w", app, err)
		}
		raw, err := os.ReadFile(filepath.Join(*dir, "keys", app+".key"))
		if err != nil {
			return nil, fmt.Errorf("attestation key for %s (written by serve -journal): %w", app, err)
		}
		v := core.NewVerifier(link, attest.NewHMACKey(raw))
		verifiers[app] = v
		return v, nil
	}
	getDict := func(app string, version uint64) (*speccfa.Dictionary, error) {
		if d, ok := dicts[app][version]; ok {
			return d, nil
		}
		if version == 0 {
			// No journaled v0: the app registered with an empty (or
			// provisioned) speculation dictionary — rebuild it from the
			// verifier, same as Register did.
			v, err := getVerifier(app)
			if err != nil {
				return nil, err
			}
			return v.Speculation(), nil
		}
		return nil, fmt.Errorf("no journaled dictionary version %d for %s", version, app)
	}
	getAut := func(app string, version uint64, d *speccfa.Dictionary) *verify.Automaton {
		if !*automaton {
			return nil
		}
		if aut, ok := auts[app][version]; ok {
			return aut
		}
		v, err := getVerifier(app)
		if err != nil {
			return nil
		}
		aut, err := v.CompileAutomaton(d)
		if err != nil {
			aut = nil
		}
		if auts[app] == nil {
			auts[app] = make(map[uint64]*verify.Automaton)
		}
		auts[app][version] = aut
		return aut
	}

	var replayed, diffs int
	for _, rec := range report.Records {
		if rec.Kind == journal.KindDict {
			d, err := speccfa.DecodeDictionary(rec.Payload)
			if err != nil {
				return fmt.Errorf("seq %d: journaled dictionary v%d for %s does not decode: %w",
					rec.Seq, rec.DictVersion, rec.App, err)
			}
			if dicts[rec.App] == nil {
				dicts[rec.App] = make(map[uint64]*speccfa.Dictionary)
			}
			dicts[rec.App][rec.DictVersion] = d
			continue
		}
		if rec.Kind != journal.KindVerdict {
			continue
		}
		if (*from > 0 && rec.Seq < *from) || (*to > 0 && rec.Seq > *to) {
			continue
		}

		v, err := getVerifier(rec.App)
		if err != nil {
			return err
		}
		d, err := getDict(rec.App, rec.DictVersion)
		if err != nil {
			return fmt.Errorf("seq %d: %w", rec.Seq, err)
		}
		chal, reports, err := attest.DecodeEvidence(rec.Payload)
		var got journal.Entry
		if err != nil {
			got.Outcome = journal.OutcomeError
			got.Detail = err.Error()
		} else {
			vd, verr := v.VerifyWithAutomaton(chal, reports, d, getAut(rec.App, rec.DictVersion, d))
			switch {
			case verr != nil:
				got.Outcome = journal.OutcomeError
				got.Detail = verr.Error()
			case vd.OK:
				got.Outcome = journal.OutcomeOK
			case vd.Code == verify.ReasonInconclusive:
				got.Outcome = journal.OutcomeInconclusive
				got.Code = vd.Code
				got.Detail = vd.Detail
			default:
				got.Outcome = journal.OutcomeAttack
				got.Code = vd.Code
				got.Detail = vd.Detail
			}
		}
		replayed++

		if got.Outcome != rec.Outcome || got.Code != rec.Code || got.Detail != rec.Detail {
			diffs++
			fmt.Printf("DIFF seq %d (%s, %s, dict v%d):\n  journaled: %s\n  replayed:  %s\n",
				rec.Seq, rec.App, rec.Device, rec.DictVersion,
				renderVerdict(rec.Outcome, rec.Code, rec.Detail),
				renderVerdict(got.Outcome, got.Code, got.Detail))
		} else if *verbose {
			fmt.Printf("seq %d (%s, dict v%d): %s\n",
				rec.Seq, rec.App, rec.DictVersion, renderVerdict(got.Outcome, got.Code, got.Detail))
		}
	}

	fmt.Printf("replay: %d verdicts re-verified, %d diffs\n", replayed, diffs)
	if report.Break != nil {
		return fmt.Errorf("broken hash chain: %w (validated prefix replayed above)", report.Break)
	}
	if diffs > 0 {
		return fmt.Errorf("replay: %d verdict diffs", diffs)
	}
	return nil
}

func renderVerdict(o journal.Outcome, code verify.ReasonCode, detail string) string {
	s := o.String()
	if o == journal.OutcomeAttack || o == journal.OutcomeInconclusive {
		s += "/" + code.String()
	}
	if detail != "" {
		if len(detail) > 80 {
			detail = detail[:80] + "..."
		}
		s += " (" + strings.TrimSpace(detail) + ")"
	}
	return s
}
