// Command benchsuite regenerates every table and figure of the paper's
// evaluation (Fig. 1a, 1b, 8, 9, 10, plus the footprint table and the
// ablation studies) on the simulated platform.
//
// Usage:
//
//	benchsuite            # all figures
//	benchsuite -fig 8     # one figure: 1a, 1b, 8, 9, 10, footprint, ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"raptrack/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 1b, 8, 9, 10, footprint, ablation, all")
	flag.Parse()

	if err := run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(fig string) error {
	needMeasure := fig != "ablation"
	var ms []*report.Measurement
	if needMeasure {
		var err error
		ms, err = report.MeasureAll()
		if err != nil {
			return err
		}
	}
	switch fig {
	case "1a":
		fmt.Print(report.Fig1a(ms))
	case "1b":
		fmt.Print(report.Fig1b(ms))
	case "8":
		fmt.Print(report.Fig8(ms))
	case "9":
		fmt.Print(report.Fig9(ms))
	case "10":
		fmt.Print(report.Fig10(ms))
	case "footprint":
		fmt.Print(report.Footprint(ms))
	case "ablation":
		s, err := report.Ablations()
		if err != nil {
			return err
		}
		fmt.Print(s)
	case "all":
		fmt.Print(report.All(ms))
		fmt.Println()
		s, err := report.Ablations()
		if err != nil {
			return err
		}
		fmt.Print(s)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
