// Command benchsuite regenerates every table and figure of the paper's
// evaluation (Fig. 1a, 1b, 8, 9, 10, plus the footprint table and the
// ablation studies) on the simulated platform, benchmarks the verifier
// core itself (interpreter vs compiled automaton, cache off/on), and
// measures the streaming attestation plane (slices-to-detect and honest
// streamed-session overhead).
//
// Usage:
//
//	benchsuite                                # all figures
//	benchsuite -fig 8                         # one figure: 1a, 1b, 8, 9, 10, footprint, ablation
//	benchsuite -fig verify -out BENCH_verify.json
//	benchsuite -fig stream -out BENCH_stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"raptrack/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 1b, 8, 9, 10, footprint, ablation, verify, stream, all")
	out := flag.String("out", "", "with -fig verify/stream: also write the result matrix as JSON to this path")
	budget := flag.Duration("budget", 0, "with -fig verify/stream: minimum measured wall time per matrix cell (default 300ms)")
	flag.Parse()

	if err := run(*fig, *out, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

// verifyBench runs the verifier-core matrix, prints the table, and
// optionally persists the JSON artifact (BENCH_verify.json in CI).
func verifyBench(out string, budget time.Duration) error {
	rs, err := report.VerifyBench(report.VerifyBenchApps, budget)
	if err != nil {
		return err
	}
	fmt.Print(report.VerifyBenchTable(rs))
	if out == "" {
		return nil
	}
	doc := report.VerifyBenchReport{Suite: "verify-engine", Budget: budget.String(), Results: rs}
	if doc.Budget == "0s" {
		doc.Budget = "300ms"
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// streamBench runs the streaming-plane benchmark, prints the table, and
// optionally persists the JSON artifact (BENCH_stream.json in CI).
func streamBench(out string, budget time.Duration) error {
	rs, err := report.StreamBench(report.StreamBenchApps, budget)
	if err != nil {
		return err
	}
	fmt.Print(report.StreamBenchTable(rs))
	if out == "" {
		return nil
	}
	doc := report.StreamBenchReport{Suite: "stream-attest", Budget: budget.String(), Results: rs}
	if doc.Budget == "0s" {
		doc.Budget = "300ms"
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func run(fig, out string, budget time.Duration) error {
	if fig == "verify" {
		return verifyBench(out, budget)
	}
	if fig == "stream" {
		return streamBench(out, budget)
	}
	needMeasure := fig != "ablation"
	var ms []*report.Measurement
	if needMeasure {
		var err error
		ms, err = report.MeasureAll()
		if err != nil {
			return err
		}
	}
	switch fig {
	case "1a":
		fmt.Print(report.Fig1a(ms))
	case "1b":
		fmt.Print(report.Fig1b(ms))
	case "8":
		fmt.Print(report.Fig8(ms))
	case "9":
		fmt.Print(report.Fig9(ms))
	case "10":
		fmt.Print(report.Fig10(ms))
	case "footprint":
		fmt.Print(report.Footprint(ms))
	case "ablation":
		s, err := report.Ablations()
		if err != nil {
			return err
		}
		fmt.Print(s)
	case "all":
		fmt.Print(report.All(ms))
		fmt.Println()
		s, err := report.Ablations()
		if err != nil {
			return err
		}
		fmt.Print(s)
	default:
		return fmt.Errorf("unknown figure %q (have 1a, 1b, 8, 9, 10, footprint, ablation, verify, stream, all)", fig)
	}
	return nil
}
