// Partial reports, streamed: constrained CFLog memory forces the Prover
// to emit evidence in authenticated slices (paper §IV-E), and the
// gateway verifies each slice as it arrives instead of waiting for the
// final report — bounded detection latency plus a device-healing
// round-trip when a slice raises an alarm.
//
// The demo stands up a real gateway on a loopback listener and runs
// three sessions against it over TCP:
//
//  1. an honest device streams the GPS run slice by slice and seals OK;
//  2. a tampered device (firmware linked with different padding, so
//     H_MEM disagrees with the golden image) streams the same run — the
//     gateway alarms mid-stream and pushes a HEAL re-provision
//     directive to the device before the run even finishes;
//  3. the remediated device re-attests honestly and is healed.
//
//	go run ./examples/partial_reports
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/remote"
	"raptrack/internal/server"
)

// watermark slices the GPS run into a handful of partial reports: the
// engine pauses the parser and emits a slice whenever 64 packets (512
// bytes) accumulate in the MTB.
const watermark = 512

const device = "field-unit-7"

func main() {
	app, err := apps.Get("gps")
	if err != nil {
		log.Fatal(err)
	}
	link, err := core.LinkForCFA(app.Build(), core.DefaultLinkOptions())
	if err != nil {
		log.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		log.Fatal(err)
	}

	// The gateway holds the golden image and the device key; Serve runs
	// sessions on a loopback listener exactly as in production.
	gw := server.New()
	gw.Register(app.Name, core.NewVerifier(link, key))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := gw.Serve(ln); err != nil {
			log.Fatal(err)
		}
	}()
	defer gw.Close()
	addr := ln.Addr().String()

	// --- 1. Honest device: slices stream, session seals OK. ------------
	fmt.Println("honest device streams the GPS run:")
	honest := remote.NewProverEndpoint()
	honest.Provision(app.Name, func() (*core.Prover, error) {
		return core.NewProver(link, key, core.ProverConfig{
			SetupMem:  app.SetupMem(),
			Watermark: watermark,
		})
	})
	cli := remote.NewClient(honest,
		remote.WithDevice(device), remote.WithStreaming(nil))
	gv, err := cli.Attest(dial(addr), app.Name)
	if err != nil {
		log.Fatal(err)
	}
	st := gw.Snapshot()
	fmt.Printf("  %d slice(s) fed, verdict accepted=%v, heal state %q\n\n",
		st.StreamSlices, gv.OK, gw.HealState(app.Name, device))

	// --- 2. Tampered device: mid-stream alarm + HEAL round-trip. --------
	// The firmware is re-linked with one extra padding NOP: the report
	// chain still authenticates, but H_MEM disagrees with the gateway's
	// golden image — a firmware-substitution attack the streaming
	// verifier flags on the first slice, not at the end of the run.
	fmt.Println("tampered device (one flipped padding word in firmware):")
	badOpts := core.DefaultLinkOptions()
	badOpts.NopPad++
	badLink, err := core.LinkForCFA(app.Build(), badOpts)
	if err != nil {
		log.Fatal(err)
	}
	tampered := remote.NewProverEndpoint()
	tampered.Provision(app.Name, func() (*core.Prover, error) {
		return core.NewProver(badLink, key, core.ProverConfig{
			SetupMem:  app.SetupMem(),
			Watermark: watermark,
		})
	})
	onHeal := func(h remote.Heal) {
		fmt.Printf("  mid-stream HEAL pushed at slice %d: %s (%s)\n",
			h.Seq, h.Directive, h.Detail)
	}
	bad := remote.NewClient(tampered,
		remote.WithDevice(device), remote.WithStreaming(onHeal))
	gv, err = bad.Attest(dial(addr), app.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sealed verdict: accepted=%v (%s)\n", gv.OK, gv.Reason())
	// The prover's HEALACK rides the same connection but lands
	// asynchronously; once processed it commits the device to
	// remediation — "healing" rather than "quarantined".
	for gw.Snapshot().HealAcks == 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("  heal state after ack: %q\n\n", gw.HealState(app.Name, device))

	// --- 3. Remediated device re-attests and is healed. -----------------
	fmt.Println("device re-provisioned with golden firmware, re-attesting:")
	gv, err = cli.Attest(dial(addr), app.Name)
	if err != nil {
		log.Fatal(err)
	}
	st = gw.Snapshot()
	fmt.Printf("  verdict accepted=%v, heal state %q\n", gv.OK, gw.HealState(app.Name, device))
	fmt.Printf("\ngateway totals: %d streamed session(s), %d slice(s), %d alarm(s), %d heal directive(s), %d ack(s)\n",
		st.StreamSessions, st.StreamSlices, st.StreamAlarms, st.HealDirectives, st.HealAcks)
}

func dial(addr string) net.Conn {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return conn
}
