// Partial reports: constrained CFLog memory forces the Prover to stream
// evidence in authenticated chunks (paper §IV-E).
//
// The GPS parser generates more trace packets than a small MTB watermark
// allows, so the engine emits partial reports whenever MTB_FLOW fires,
// rewinds the buffer, and resumes the application. The verifier
// authenticates the whole chain (nonce, sequence numbers, final flag),
// concatenates the windows, and reconstructs the full path — and any
// dropped or reordered chunk is rejected.
//
//	go run ./examples/partial_reports
package main

import (
	"fmt"
	"log"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
)

func main() {
	app, err := apps.Get("gps")
	if err != nil {
		log.Fatal(err)
	}
	link, err := core.LinkForCFA(app.Build(), core.DefaultLinkOptions())
	if err != nil {
		log.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		log.Fatal(err)
	}

	// A 512-byte watermark: the engine must pause the parser and transmit
	// whenever 64 packets accumulate.
	prover, err := core.NewProver(link, key, core.ProverConfig{
		SetupMem:  app.SetupMem(),
		Watermark: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	chal, err := attest.NewChallenge(app.Name)
	if err != nil {
		log.Fatal(err)
	}
	reports, stats, err := prover.Attest(chal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evidence: %d bytes across %d reports (%d partial + 1 final)\n",
		stats.CFLogBytes, len(reports), stats.Partials)
	fmt.Printf("application stalled %d cycles for report emission\n\n", stats.PauseCycles)
	for _, r := range reports {
		fmt.Printf("  report seq=%d final=%-5v window=%4d bytes auth=%x...\n",
			r.Seq, r.Final, len(r.CFLog), r.Auth[:8])
	}

	verifier := core.NewVerifier(link, key)
	verdict, err := verifier.Verify(chal, reports)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull chain: accepted=%v (%d transfers reconstructed)\n", verdict.OK, verdict.Transfers)

	// Tampering with the chain must be caught by the Verifier.
	fmt.Println("\nadversarial chain manipulations:")
	drop := append(append([]*attest.Report{}, reports[:1]...), reports[2:]...)
	if _, err := verifier.Verify(chal, drop); err != nil {
		fmt.Printf("  dropping a window:   rejected (%v)\n", err)
	}
	swapped := append([]*attest.Report{}, reports...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := verifier.Verify(chal, swapped); err != nil {
		fmt.Printf("  reordering windows:  rejected (%v)\n", err)
	}
	stale, err := attest.NewChallenge(app.Name)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := verifier.Verify(stale, reports); err != nil {
		fmt.Printf("  replaying the chain: rejected (%v)\n", err)
	}
}
