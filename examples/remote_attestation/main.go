// Remote attestation: the paper's §II-C challenge-response protocol over
// an actual TCP connection. A Prover endpoint (the deployed MCU) listens;
// the Verifier connects, sends a fresh challenge, and receives the signed
// report stream while the application is still executing — partial
// reports arrive live as the MTB watermark fires (§IV-E).
//
//	go run ./examples/remote_attestation
package main

import (
	"fmt"
	"log"
	"net"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
	"raptrack/internal/remote"
)

func main() {
	app, err := apps.Get("geiger")
	if err != nil {
		log.Fatal(err)
	}
	// Provisioning: device and verifier share the linked image and key.
	link, err := core.LinkForCFA(app.Build(), core.DefaultLinkOptions())
	if err != nil {
		log.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		log.Fatal(err)
	}

	// The deployed Prover.
	endpoint := remote.NewProverEndpoint()
	endpoint.Provision(app.Name, func() (*core.Prover, error) {
		return core.NewProver(link, key, core.ProverConfig{
			SetupMem:  app.SetupMem(),
			Watermark: 1024, // stream evidence in 1 KB windows
		})
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if err := endpoint.ServeOne(conn); err != nil {
					log.Printf("prover: %v", err)
				}
			}()
		}
	}()
	fmt.Printf("prover listening on %s\n", l.Addr())

	// The remote Verifier.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	verifier := core.NewVerifier(link, key)
	res, err := remote.RequestAttestation(conn, app.Name, verifier)
	if err != nil {
		log.Fatalf("attestation failed: %v", err)
	}

	fmt.Printf("received %d report(s):\n", len(res.Reports))
	for _, r := range res.Reports {
		kind := "partial"
		if r.Final {
			kind = "final"
		}
		fmt.Printf("  seq=%d %-7s %4d evidence bytes\n", r.Seq, kind, len(r.CFLog))
	}
	v := res.Verdict
	if v.OK {
		fmt.Printf("verdict: ACCEPTED — %d transfers reconstructed from %d packets\n",
			v.Transfers, v.Packets)
	} else {
		fmt.Printf("verdict: REJECTED — %s\n", v.Reason())
	}
}
