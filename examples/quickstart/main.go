// Quickstart: the complete RAP-Track flow on one kernel — offline linking,
// attested execution, and verifier-side path reconstruction.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"raptrack/internal/apps"
	"raptrack/internal/attest"
	"raptrack/internal/core"
)

func main() {
	// 1. The workload: BEEBs `prime` (any asm.Program works here).
	app, err := apps.Get("prime")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline phase: partition the program into MTBAR/MTBDR and insert
	//    trampolines so the MTB logs exactly the non-deterministic
	//    transfers.
	link, err := core.LinkForCFA(app.Build(), core.DefaultLinkOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linked %q: %d->%d bytes, %d stubs, %d logged + %d static loops\n",
		app.Name, link.Stats.CodeBefore, link.Stats.CodeAfter,
		link.Stats.Stubs, link.Stats.OptimizedLoops, link.Stats.StaticLoops)

	// 3. Provision the shared attestation key (symmetric setting).
	key, err := attest.GenerateHMACKey()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Prover side: the Verifier's challenge starts a CFA session; the
	//    application runs on the simulated Cortex-M33 while the MTB traces
	//    it in parallel.
	prover, err := core.NewProver(link, key, core.ProverConfig{SetupMem: app.SetupMem()})
	if err != nil {
		log.Fatal(err)
	}
	chal, err := attest.NewChallenge(app.Name)
	if err != nil {
		log.Fatal(err)
	}
	reports, stats, err := prover.Attest(chal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested run: %d cycles, %d instructions, CFLog %d bytes in %d report(s)\n",
		stats.Cycles, stats.Steps, stats.CFLogBytes, len(reports))

	// 5. Verifier side: authenticate the report chain, check H_MEM, and
	//    reconstruct the complete control-flow path from the evidence.
	verdict, err := core.NewVerifier(link, key).Verify(chal, reports)
	if err != nil {
		log.Fatalf("malformed evidence: %v", err)
	}
	if !verdict.OK {
		log.Fatalf("attestation REJECTED: %s", verdict.Reason())
	}
	fmt.Printf("attestation ACCEPTED: %d transfers reconstructed losslessly (%d packets consumed)\n",
		verdict.Transfers, verdict.PacketsUsed)
	fmt.Println("first reconstructed transfers:")
	for i, e := range verdict.Path {
		if i >= 6 {
			break
		}
		fmt.Printf("  %#08x -> %#08x  %s\n", e.Src, e.Dst, e.Kind)
	}
}
