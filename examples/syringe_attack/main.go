// Syringe attack: a return-oriented hijack of a safety interlock, invisible
// to static attestation but caught by RAP-Track's control-flow evidence.
//
// The firmware is a syringe pump with a bolus limit: the requested dose is
// checked by check_limit, and over-limit requests take the deny path. The
// adversary (who controls Non-Secure RAM, per the §III model) corrupts the
// saved return address of check_limit on the stack, so the denied request
// returns straight into the dispense call — the motor runs even though the
// check said no. The program code is untouched: H_MEM verifies clean.
// The MTB, however, logged the impossible return, and the verifier's
// shadow-stack policy flags it.
//
//	go run ./examples/syringe_attack
package main

import (
	"fmt"
	"log"

	"raptrack/internal/asm"
	"raptrack/internal/attest"
	"raptrack/internal/cfa"
	"raptrack/internal/core"
	"raptrack/internal/cpu"
	"raptrack/internal/isa"
	"raptrack/internal/mem"
	"raptrack/internal/periph"
)

// buildPump constructs the interlocked pump firmware. The requested dose
// arrives over the UART; doses above 10 units must be denied.
func buildPump(dose int32) (*asm.Program, func(*mem.Memory) *periph.GPIO) {
	p := asm.NewProgram("pump")

	main := p.NewFunc("main")
	main.PUSH(isa.LR)
	main.MOV32(isa.R8, periph.UARTBase)
	main.MOV32(isa.R9, periph.GPIOBase)
	main.MOV32(isa.R10, periph.HostLinkBase)
	main.LDRi(isa.R0, isa.R8, periph.UARTData) // requested dose
	main.BL("check_limit")
	main.CMPi(isa.R0, 1)
	main.BNE("deny")
	main.Label("do_dispense")
	main.BL("dispense")
	main.B("end")
	main.Label("deny")
	main.MOV32(isa.R0, 0xDEAD) // report "denied"
	main.STRi(isa.R0, isa.R10, periph.HostData)
	main.Label("end")
	main.POP(isa.PC)

	cl := p.AddFunc(asm.NewFunction("check_limit"))
	cl.PUSH(isa.R4, isa.LR)
	cl.MOVr(isa.R4, isa.R0)
	cl.Label("decide")
	cl.CMPi(isa.R4, 10)
	cl.BGT("too_much")
	cl.MOVi(isa.R0, 1)
	cl.POP(isa.R4, isa.PC)
	cl.Label("too_much")
	cl.MOVi(isa.R0, 0)
	cl.POP(isa.R4, isa.PC)

	disp := p.AddFunc(asm.NewFunction("dispense"))
	disp.MOVi(isa.R1, 1)
	disp.STRi(isa.R1, isa.R9, periph.GPIOOut) // motor on
	disp.MOVi(isa.R2, 8)
	disp.Label("dly")
	disp.SUBi(isa.R2, isa.R2, 1)
	disp.CMPi(isa.R2, 0)
	disp.BNE("dly")
	disp.MOVi(isa.R1, 0)
	disp.STRi(isa.R1, isa.R9, periph.GPIOOut) // motor off
	disp.RET()

	setup := func(m *mem.Memory) *periph.GPIO {
		gpio := &periph.GPIO{}
		m.Map(periph.UARTBase, periph.DeviceWindow, periph.NewUART([]byte{byte(dose)}))
		m.Map(periph.GPIOBase, periph.DeviceWindow, gpio)
		m.Map(periph.HostLinkBase, periph.DeviceWindow, &periph.HostLink{})
		return gpio
	}
	return p, setup
}

// attestPump runs one CFA session; when attack is set, the saved return
// address of check_limit is overwritten mid-execution.
func attestPump(attack bool) (verOK bool, reason string, hmemOK bool, motorRan bool) {
	prog, setup := buildPump(55) // 55 units: over the limit, must be denied
	link, err := core.LinkForCFA(prog, core.DefaultLinkOptions())
	if err != nil {
		log.Fatal(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		log.Fatal(err)
	}

	m := mem.New()
	gpio := setup(m)
	engine, err := cfa.New(cfa.Config{Link: link, Mem: m, Signer: key})
	if err != nil {
		log.Fatal(err)
	}
	chal, err := attest.NewChallenge("pump")
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Begin(chal); err != nil {
		log.Fatal(err)
	}
	c, err := cpu.New(engine.CPUConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The adversary waits for check_limit to establish its frame, then
	// rewrites the saved LR slot so the "deny" verdict returns into the
	// dispense call. Writing NS RAM is within the §III adversary model —
	// no code is modified.
	decideAddr := link.Image.Symbols["check_limit.decide"]
	hijackTo := link.Image.Symbols["main.do_dispense"]
	// main pushed LR (1 slot); check_limit pushed R4+LR: the saved LR
	// lives one word above SP.
	lrSlot := mem.NSStackTop - 4 - 4 // below main's saved LR

	for {
		if attack && c.R[isa.PC] == decideAddr {
			if err := m.Write32(lrSlot, hijackTo); err != nil {
				log.Fatal(err)
			}
		}
		halted, err := c.Step()
		if err != nil {
			log.Fatalf("execution fault: %v", err)
		}
		if halted {
			break
		}
	}
	reports, err := engine.Finish()
	if err != nil {
		log.Fatal(err)
	}

	verifier := core.NewVerifier(link, key)
	verdict, err := verifier.Verify(chal, reports)
	if err != nil {
		log.Fatalf("malformed evidence: %v", err)
	}
	hmemOK = reports[0].HMem == verifier.ExpectedHMem()
	return verdict.OK, verdict.Reason(), hmemOK, gpio.Writes > 0
}

func main() {
	fmt.Println("=== benign session: dose 55 is over the limit, pump denies ===")
	ok, reason, hmem, motor := attestPump(false)
	fmt.Printf("motor ran: %v, H_MEM valid: %v, CFA verdict: accepted=%v\n\n", motor, hmem, ok)

	fmt.Println("=== attacked session: saved return address redirected to the dispense call ===")
	ok, reason, hmem, motor = attestPump(true)
	fmt.Printf("motor ran: %v  <- the interlock was bypassed on the device\n", motor)
	fmt.Printf("H_MEM valid: %v  <- static attestation alone would have accepted this\n", hmem)
	fmt.Printf("CFA verdict: accepted=%v\n", ok)
	fmt.Printf("reason: %s\n", reason)
}
