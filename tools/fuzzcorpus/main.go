// Command fuzzcorpus regenerates the checked-in seed corpora under each
// package's testdata/fuzz/<Target>/ directory. Seeds complement the
// in-code f.Add entries with boundary and wire-level edge cases (header
// limits, truncations, canonical encodings of real protocol objects), so
// CI's fuzz smoke runs — and anyone running `go test -fuzz` locally —
// start from inputs that already reach deep parser states.
//
// Run from the repository root:
//
//	go run ./tools/fuzzcorpus
//
// Output is deterministic except where noted (signed reports embed a
// fresh HMAC; the parsers under fuzz never verify signatures, so the
// nondeterminism is irrelevant to coverage, and files are only rewritten
// when regenerated explicitly).
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"raptrack/internal/attest"
	"raptrack/internal/remote"
	"raptrack/internal/trace"
	"raptrack/internal/trace/pipeline"
	"raptrack/internal/verify"
)

// corpusEntry renders one []byte input in the "go test fuzz v1" format.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

func writeCorpus(dir string, seeds map[string][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, data := range seeds {
		if err := os.WriteFile(filepath.Join(dir, name), corpusEntry(data), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func frame(typ byte, payload []byte) []byte {
	var b bytes.Buffer
	if err := remote.WriteFrame(&b, typ, payload); err != nil {
		panic(err)
	}
	return b.Bytes()
}

func main() {
	chal, err := attest.NewChallenge("prime")
	if err != nil {
		panic(err)
	}
	key, err := attest.GenerateHMACKey()
	if err != nil {
		panic(err)
	}
	report := &attest.Report{
		App:   "prime",
		Nonce: chal.Nonce,
		Seq:   3,
		Final: true,
		CFLog: pipeline.EncodeMTB([]trace.Packet{{Src: 0x200010, Dst: 0x200040}, {Src: 0x200052, Dst: 0x200014}}),
	}
	if err := attest.SignReport(report, key); err != nil {
		panic(err)
	}

	oversized := make([]byte, remote.FrameHeaderSize)
	oversized[0] = remote.FrameRprt
	binary.LittleEndian.PutUint32(oversized[1:], remote.MaxFrame+1)
	exact := frame(remote.FrameFail, bytes.Repeat([]byte{'x'}, 64))

	corpora := map[string]map[string][]byte{
		"internal/remote/testdata/fuzz/FuzzReadFrame": {
			"seed-chal":       frame(remote.FrameChal, chal.Encode()),
			"seed-rprt":       frame(remote.FrameRprt, report.Encode()),
			"seed-helo":       frame(remote.FrameHello, remote.EncodeHello("quicksort")),
			"seed-busy-hint":  frame(remote.FrameBusy, remote.EncodeBusy(250*time.Millisecond)),
			"seed-vrdt":       frame(remote.FrameVerdict, remote.EncodeVerdict(false, verify.ReasonROP, "return destination mismatch")),
			"seed-dict":       frame(remote.FrameDict, []byte{1, 2, 0x10, 0, 0x20, 0}),
			"seed-oversized":  oversized,
			"seed-short-head": {remote.FrameChal, 0x10, 0x00},
			"seed-trunc-body": append([]byte{}, exact[:remote.FrameHeaderSize+8]...),
			"seed-zero-len":   frame(remote.FrameBusy, nil),
			"seed-unknown":    frame(0x7f, []byte("?")),
		},
		"internal/remote/testdata/fuzz/FuzzParseBusy": {
			"seed-empty":    {},
			"seed-min-hint": remote.EncodeBusy(time.Millisecond),
			"seed-max-u32":  {0xff, 0xff, 0xff, 0xff},
			"seed-zero":     {0, 0, 0, 0},
			"seed-short":    {1, 2, 3},
			"seed-long":     {1, 0, 0, 0, 9},
		},
		"internal/remote/testdata/fuzz/FuzzDecodeVerdict": {
			"seed-ok":         remote.EncodeVerdict(true, verify.ReasonNone, ""),
			"seed-reject":     remote.EncodeVerdict(false, verify.ReasonJOP, "indirect call to non-entry"),
			"seed-inconc":     remote.EncodeVerdict(false, verify.ReasonInconclusive, "detectable trace loss"),
			"seed-bad-flag":   {7},
			"seed-bad-reason": {0, 0xee},
			"seed-empty":      {},
		},
		"internal/attest/testdata/fuzz/FuzzDecodeReport": {
			"seed-signed":    report.Encode(),
			"seed-zero":      (&attest.Report{}).Encode(),
			"seed-partial":   (&attest.Report{App: "gps", Seq: 7, Wraps: 2, Dropped: 1}).Encode(),
			"seed-empty":     {},
			"seed-garbage":   bytes.Repeat([]byte{0xa5}, 40),
			"seed-trunc-sig": report.Encode()[:len(report.Encode())-8],
		},
		"internal/attest/testdata/fuzz/FuzzDecodeChallenge": {
			"seed-chal":    chal.Encode(),
			"seed-noapp":   attest.Challenge{}.Encode(),
			"seed-empty":   {},
			"seed-garbage": bytes.Repeat([]byte{0xff}, attest.NonceSize+4),
		},
		// FuzzRouterHello inputs: a raw HELO payload (not framed) — the
		// bytes the router peeks at before pinning a session to a shard.
		"internal/router/testdata/fuzz/FuzzRouterHello": {
			"seed-full-id":   remote.EncodeHelloID("prime", "device-00042"),
			"seed-app-only":  remote.EncodeHello("gps"),
			"seed-no-sep":    {0x02, 'p', 'r', 'i', 'm', 'e'},
			"seed-sep-only":  {0x02, 0x00},
			"seed-stale-ver": {0x01, 'p'},
			"seed-long-dev":  remote.EncodeHelloID("crc32", string(bytes.Repeat([]byte{'d'}, 200))),
			"seed-utf8-dev":  remote.EncodeHelloID("prime", "dévice-π"),
			"seed-empty":     {},
		},
		// FuzzPipelineDecode inputs: a leading format-selector byte
		// (even: MTB, odd: TRACES) followed by the stream bytes.
		"internal/trace/pipeline/testdata/fuzz/FuzzPipelineDecode": {
			"seed-mtb-chain":    append([]byte{0}, report.CFLog...),
			"seed-mtb-ragged":   append([]byte{0}, report.CFLog[:len(report.CFLog)-3]...),
			"seed-mtb-strays":   append([]byte{0}, report.CFLog[:len(report.CFLog)-6]...),
			"seed-traces-log":   append([]byte{1}, pipeline.EncodeTRACES([]uint32{0x200040, 0x200014, 0x200052})...),
			"seed-traces-short": append([]byte{1}, pipeline.EncodeTRACES([]uint32{0x200040, 0x200014})[:9]...),
			"seed-traces-trail": append([]byte{1}, append(pipeline.EncodeTRACES([]uint32{0x200040}), 0xAA, 0xBB, 0xCC, 0xDD)...),
			"seed-traces-huge":  append([]byte{1}, 0xFF, 0xFF, 0xFF, 0x7F),
			"seed-header-only":  {1},
		},
	}

	for dir, seeds := range corpora {
		if err := writeCorpus(dir, seeds); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
	}
}
